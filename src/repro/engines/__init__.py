"""``repro.engines`` — the declared-capability seam between the
experiment layer and the transport backends.

Three backends reproduce the paper at different fidelities: the fluid
rate model (the §4/§5 reference), the segment-level packet stack
(validation), and the analytic vectorized flow tier (population
scale).  Before this package, knowing what each could do meant five
hand-maintained copies; now a backend is one :class:`Engine`
registration — name, supported protocols, scenario features, obs
fidelity, run/compile hooks — and the runner dispatch, CLI
validation, CHK243 verify gate, ``build_protocol`` errors, and CHK5xx
agreement-spec enumeration all read the registry.

Registering a fourth engine (see ``tests/test_engines.py`` for a
worked dummy) gets all of that for free.
"""

from repro.engines.base import (
    ALL_FEATURES,
    DEFAULT_ENGINE,
    DERIVED_FEATURES,
    FEATURE_BYTES,
    FEATURE_DURATION,
    FEATURE_INTERFERERS,
    FEATURE_PER_CARRIER,
    FEATURE_UPLOAD,
    Engine,
)
from repro.engines.compiler import (
    capability_error,
    compile_scenario,
    ensure_supported,
    protocol_error,
    required_features,
    unsupported_features,
    validate_run,
)
from repro.engines.registry import (
    engine_names,
    get_engine,
    load_default_engines,
    register_engine,
    registered_engines,
    unregister_engine,
)

__all__ = [
    "ALL_FEATURES",
    "DEFAULT_ENGINE",
    "DERIVED_FEATURES",
    "Engine",
    "FEATURE_BYTES",
    "FEATURE_DURATION",
    "FEATURE_INTERFERERS",
    "FEATURE_PER_CARRIER",
    "FEATURE_UPLOAD",
    "capability_error",
    "compile_scenario",
    "engine_names",
    "ensure_supported",
    "get_engine",
    "load_default_engines",
    "protocol_error",
    "register_engine",
    "registered_engines",
    "required_features",
    "unregister_engine",
    "unsupported_features",
    "validate_run",
]
