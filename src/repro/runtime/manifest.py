"""JSONL run manifests — the runtime's flight recorder.

One line per run attempt: the spec (hash + label), the outcome, wall
time, and which worker executed it.  A manifest answers "what actually
ran?" after the fact — e.g. a warm-cache report shows ``executed: 0``
with every run ``cached``.

Outcomes:

* ``executed`` — ran to completion in this invocation;
* ``cached``   — satisfied from the result cache, nothing ran;
* ``deduped``  — coalesced onto another spec with the same content
  hash (queue dedup): one execution, this line's run just waited;
* ``retried``  — one attempt crashed or timed out and was requeued;
* ``failed``   — gave up (after bounded retries, where applicable).
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from repro.errors import ConfigurationError

OUTCOMES = ("executed", "cached", "deduped", "retried", "failed")

#: Outcomes that terminate a run (``retried`` is an intermediate event).
TERMINAL_OUTCOMES = ("executed", "cached", "deduped", "failed")


@dataclass(frozen=True)
class ManifestEntry:
    """One manifest line."""

    spec_hash: str
    label: str
    protocol: str
    builder: str
    seed: int
    outcome: str
    wall_time_s: float
    worker: str
    attempt: int
    timestamp: float
    #: Path of the run's exported trace file ("" when tracing was off;
    #: defaulted so manifests written before the obs layer still parse).
    trace: str = ""
    #: The run's :class:`~repro.runtime.perf.PerfRecord` as a dict
    #: (None for cached/retried/failed lines and for manifests written
    #: before the perf-telemetry layer).
    perf: Optional[Dict[str, Any]] = None
    #: Distributed-trace identity of the job that produced this line
    #: ("" when tracing was off or the manifest predates the layer).
    trace_id: str = ""
    span_id: str = ""


class RunManifest:
    """Append-only JSONL writer (plus a reader for post-hoc analysis).

    The file is opened lazily on the first record so that constructing
    a manifest never creates an empty file, and each line is flushed so
    a crash loses at most the in-flight run.
    """

    def __init__(self, path: Union[str, Path], append: bool = False):
        self.path = Path(path)
        self._append = append
        self._fh: Optional[IO[str]] = None

    def record(
        self,
        spec,
        outcome: str,
        wall_time_s: float = 0.0,
        worker: str = "local",
        attempt: int = 1,
        trace: str = "",
        perf: Optional[Dict[str, Any]] = None,
        trace_id: str = "",
        span_id: str = "",
    ) -> ManifestEntry:
        """Write one line for ``spec`` and return the entry."""
        if outcome not in OUTCOMES:
            raise ConfigurationError(
                f"unknown outcome {outcome!r}; choose from {OUTCOMES}"
            )
        entry = ManifestEntry(
            spec_hash=spec.content_hash(),
            label=spec.label,
            protocol=spec.protocol,
            builder=spec.builder,
            seed=spec.seed,
            outcome=outcome,
            wall_time_s=wall_time_s,
            worker=worker,
            attempt=attempt,
            timestamp=time.time(),
            trace=trace,
            perf=dict(perf) if perf else None,
            trace_id=trace_id,
            span_id=span_id,
        )
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a" if self._append else "w")
        self._fh.write(json.dumps(dataclasses.asdict(entry)) + "\n")
        self._fh.flush()
        return entry

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunManifest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def read(path: Union[str, Path]) -> List[ManifestEntry]:
        """Parse a manifest file back into entries."""
        entries: List[ManifestEntry] = []
        try:
            lines = Path(path).read_text().splitlines()
        except OSError as exc:
            raise ConfigurationError(f"cannot read manifest: {exc}") from exc
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(ManifestEntry(**json.loads(line)))
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed manifest line: {exc}"
                ) from exc
        return entries


def summarize(entries: Iterable[ManifestEntry]) -> Dict[str, int]:
    """Counts per outcome, plus ``total`` terminal runs."""
    counts = {outcome: 0 for outcome in OUTCOMES}
    for entry in entries:
        counts[entry.outcome] = counts.get(entry.outcome, 0) + 1
    counts["total"] = sum(counts[o] for o in TERMINAL_OUTCOMES)
    return counts


def format_summary(counts: Dict[str, int]) -> str:
    """One-line human summary, e.g. ``12 runs: 4 executed, 8 cached``."""
    parts = [
        f"{counts.get(outcome, 0)} {outcome}"
        for outcome in ("executed", "cached", "failed")
    ]
    if counts.get("deduped"):
        parts.append(f"{counts['deduped']} deduped")
    if counts.get("retried"):
        parts.append(f"{counts['retried']} retried")
    return f"{counts.get('total', 0)} runs: " + ", ".join(parts)
