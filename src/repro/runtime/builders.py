"""Stock builder registrations: one per experiment family.

Imported lazily by :func:`repro.runtime.spec.load_default_builders`
(never at :mod:`repro.runtime` import time — the experiment modules
import the executor, so an eager import here would be circular).  Each
registration maps a builder name to the scenario factory the
corresponding experiment module already exposes; the wild and web
entries adapt factories whose natural arguments are not primitives.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.experiments import background as _background
from repro.experiments import mobility as _mobility
from repro.experiments import random_bw as _random_bw
from repro.experiments import static_bw as _static_bw
from repro.experiments import upload as _upload
from repro.experiments import web as _web
from repro.experiments.wild import environment_scenario
from repro.net.host import WILD_SERVERS
from repro.runtime.spec import RunSpec, register_builder, register_scenario_builder
from repro.workloads.wild import CLIENT_SITES, WildEnvironment

register_scenario_builder("static", _static_bw.static_scenario)
register_scenario_builder("random-bw", _random_bw.random_bw_scenario)
register_scenario_builder("background", _background.background_scenario)
register_scenario_builder("mobility", _mobility.mobility_scenario)
register_scenario_builder("upload", _upload.upload_scenario)


def wild_scenario(
    site: str,
    server: str,
    wifi_mbps: float,
    lte_mbps: float,
    download_bytes: float,
    fluctuating: bool = True,
):
    """Rebuild a §5 wild-environment scenario from primitives.

    ``WildEnvironment`` nests :class:`ClientSite`/:class:`Server`
    objects; specs carry only their names so the payload stays JSON.
    """
    env = WildEnvironment(
        site=CLIENT_SITES[site],
        server=WILD_SERVERS[server],
        wifi_mbps=wifi_mbps,
        lte_mbps=lte_mbps,
    )
    return environment_scenario(env, download_bytes, fluctuating=fluctuating)


register_scenario_builder("wild", wild_scenario)


def _web_execute(spec: RunSpec):
    return _web.run_web(spec.protocol, seed=spec.seed, **spec.kwargs)


def _web_decode(data: Dict[str, Any]) -> Any:
    return _web.WebResult(**data)


register_builder(
    "web", _web_execute, encode=dataclasses.asdict, decode=_web_decode
)
