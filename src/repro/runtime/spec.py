"""Declarative run specifications and the scenario-builder registry.

A :class:`~repro.experiments.scenario.Scenario` holds capacity-process
*closures* and therefore cannot cross a process boundary.  A
:class:`RunSpec` is the picklable stand-in: it names a registered
scenario builder plus the JSON-serialisable keyword arguments that
rebuild the scenario on the other side, together with the protocol and
seed.  Because the payload is canonical JSON, every spec also has a
stable content hash that keys the on-disk result cache.

Builders are registered by name; the stock registrations (one per
experiment module, plus the web workload) live in
:mod:`repro.runtime.builders` and are loaded lazily the first time a
builder is looked up — in the parent process *and* in pool workers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError

#: Bump to invalidate every cached result after a change to the
#: simulation code or the result schema.
RUNTIME_SCHEMA_VERSION = 2


def code_salt() -> str:
    """The code/version salt mixed into every content hash.

    A cached result is only reusable while the code that produced it is
    equivalent; the package version plus the runtime schema version is
    the coarse-but-safe proxy for that.
    """
    from repro import __version__

    return f"repro-{__version__}/runtime-{RUNTIME_SCHEMA_VERSION}"


@dataclass(frozen=True)
class BuilderEntry:
    """One registered way of executing a :class:`RunSpec`.

    ``execute`` turns a spec into a result object; ``encode``/``decode``
    are the lossless dict codec the pool and the cache use for it.
    """

    name: str
    execute: Callable[["RunSpec"], Any]
    encode: Callable[[Any], Dict[str, Any]]
    decode: Callable[[Dict[str, Any]], Any]


_REGISTRY: Dict[str, BuilderEntry] = {}
_SCENARIO_FNS: Dict[str, Callable[..., Any]] = {}
_DEFAULTS_LOADED = False


def register_builder(
    name: str,
    execute: Callable[["RunSpec"], Any],
    encode: Optional[Callable[[Any], Dict[str, Any]]] = None,
    decode: Optional[Callable[[Dict[str, Any]], Any]] = None,
    replace: bool = False,
) -> BuilderEntry:
    """Register an arbitrary executor under ``name``.

    The default codec assumes the result has ``to_dict``/``from_dict``
    (as :class:`~repro.experiments.scenario.RunResult` does).
    """
    if not replace and name in _REGISTRY:
        raise ConfigurationError(f"builder {name!r} is already registered")
    entry = BuilderEntry(
        name=name,
        execute=execute,
        encode=encode or _run_result_encode,
        decode=decode or _run_result_decode,
    )
    _REGISTRY[name] = entry
    return entry


def register_scenario_builder(
    name: str, scenario_fn: Callable[..., Any], replace: bool = False
) -> BuilderEntry:
    """Register ``scenario_fn(**kwargs) -> Scenario`` under ``name``.

    The spec's ``config`` overrides are applied field-wise to the
    scenario's :class:`~repro.core.config.EMPTCPConfig` before the run
    (this is how parameter sweeps ride through the runtime).
    """

    def _execute(spec: "RunSpec") -> Any:
        from repro.experiments.runner import run_scenario

        scenario = scenario_fn(**spec.kwargs)
        if spec.config:
            scenario = dataclasses.replace(
                scenario,
                emptcp_config=dataclasses.replace(
                    scenario.emptcp_config, **spec.config
                ),
            )
        return run_scenario(
            spec.protocol, scenario, seed=spec.seed, engine=spec.engine
        )

    _SCENARIO_FNS[name] = scenario_fn
    return register_builder(name, _execute, replace=replace)


def build_scenario(name: str, **kwargs: Any) -> Any:
    """Materialise the :class:`Scenario` behind a scenario builder."""
    load_default_builders()
    if name not in _SCENARIO_FNS:
        raise ConfigurationError(
            f"{name!r} is not a scenario builder; known: {sorted(_SCENARIO_FNS)}"
        )
    return _SCENARIO_FNS[name](**kwargs)


def _run_result_encode(result: Any) -> Dict[str, Any]:
    return result.to_dict()


def _run_result_decode(data: Dict[str, Any]) -> Any:
    from repro.experiments.scenario import RunResult

    return RunResult.from_dict(data)


def load_default_builders() -> None:
    """Import the stock registrations exactly once per process."""
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        _DEFAULTS_LOADED = True
        import repro.runtime.builders  # noqa: F401  (registers on import)


def get_builder(name: str) -> BuilderEntry:
    """Look up a registered builder, loading the defaults on demand."""
    load_default_builders()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown builder {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_builders() -> Dict[str, BuilderEntry]:
    """A snapshot of the registry (defaults included)."""
    load_default_builders()
    return dict(_REGISTRY)


@dataclass
class RunSpec:
    """One declarative (protocol, scenario, seed) run.

    ``kwargs`` parameterise the named builder; ``config`` optionally
    overrides :class:`~repro.core.config.EMPTCPConfig` fields.  Both
    must be JSON-serialisable so the spec can cross process boundaries
    and hash stably.
    """

    protocol: str
    builder: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    config: Dict[str, Any] = field(default_factory=dict)
    #: Transport engine: "fluid" (default) or "packet".
    engine: str = "fluid"

    def __post_init__(self) -> None:
        try:
            json.dumps([self.kwargs, self.config], sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"RunSpec kwargs/config must be JSON-serialisable: {exc}"
            ) from exc

    @property
    def label(self) -> str:
        """Short human-readable identifier for logs and manifests."""
        suffix = "" if self.engine == "fluid" else f"@{self.engine}"
        return f"{self.builder}/{self.protocol}#s{self.seed}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RUNTIME_SCHEMA_VERSION,
            "protocol": self.protocol,
            "builder": self.builder,
            "kwargs": dict(self.kwargs),
            "seed": self.seed,
            "config": dict(self.config),
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        try:
            return cls(
                protocol=data["protocol"],
                builder=data["builder"],
                kwargs=dict(data.get("kwargs", {})),
                seed=data.get("seed", 0),
                config=dict(data.get("config", {})),
                engine=data.get("engine", "fluid"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed RunSpec data: {exc}") from exc

    def canonical_json(self) -> str:
        """Canonical (sorted, compact) JSON — the hash input."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """Stable hex digest of the spec content plus the code salt."""
        payload = f"{code_salt()}\n{self.canonical_json()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def execute(self) -> Any:
        """Run this spec in-process and return its result object."""
        return get_builder(self.builder).execute(self)


@dataclass
class ScenarioRef:
    """A named, parameterised scenario — a picklable ``Scenario`` stand-in.

    Where an API used to take a built :class:`Scenario`, accepting a
    ``ScenarioRef`` instead lets the call route through the parallel
    runtime (see :func:`repro.experiments.sensitivity.sweep_config`).
    """

    builder: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def spec(
        self,
        protocol: str,
        seed: int = 0,
        config: Optional[Dict[str, Any]] = None,
        engine: str = "fluid",
    ) -> RunSpec:
        """Instantiate a :class:`RunSpec` against this scenario."""
        return RunSpec(
            protocol=protocol,
            builder=self.builder,
            kwargs=dict(self.kwargs),
            seed=seed,
            config=dict(config or {}),
            engine=engine,
        )

    def build(self) -> Any:
        """Materialise the underlying :class:`Scenario` in-process."""
        return build_scenario(self.builder, **self.kwargs)
