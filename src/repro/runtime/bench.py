"""The perf benchmark suite (``repro perf record/compare/check``).

A *bench record* pins the figure scenarios the paper's evaluation
leans on — the §4.2 static-bandwidth downloads behind Figures 5
(good WiFi) and 6 (bad WiFi) — on both transport engines, and
measures each with the per-run telemetry of
:mod:`repro.runtime.perf`.  The resulting ``BENCH_<timestamp>.json``
at the repo root is the unit of cross-run regression analysis:
``repro perf compare old.json new.json`` diffs two of them and fails
(non-zero exit) on any events/sec drop beyond the threshold.

Noise handling: every scenario is executed ``repeats`` times
in-process and the *best* repeat (max events/sec) represents it —
min-of-N wall time is the standard way to strip scheduler noise from
a deterministic workload, and because the simulation is deterministic
the repeats differ only in wall time, never in sim time or event
count.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram
from repro.runtime.perf import (
    PERF_SCHEMA_VERSION,
    PerfMeter,
    PerfRecord,
    peak_rss_kb,
)
from repro.runtime.spec import RunSpec
from repro.units import mib

#: Bump when the BENCH_*.json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: File-name prefix of bench records at the repo root.
BENCH_PREFIX = "BENCH_"

#: Default regression threshold: fail when events/sec drops by more
#: than this fraction versus the baseline.
DEFAULT_THRESHOLD = 0.10

#: The benchmark scenarios: (scenario key, good_wifi flag).  The keys
#: name the figures they back so a bench record reads like the paper.
SCENARIOS: Tuple[Tuple[str, bool], ...] = (
    ("fig05-static-good", True),
    ("fig06-static-bad", False),
)

DEFAULT_PROTOCOLS: Tuple[str, ...] = ("emptcp",)
DEFAULT_ENGINES: Tuple[str, ...] = ("fluid", "packet")


def bench_specs(
    size_mb: float = 4.0,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    engines: Sequence[str] = DEFAULT_ENGINES,
) -> List[Tuple[str, RunSpec]]:
    """The suite as ``(key, spec)`` pairs, deterministic order."""
    pairs: List[Tuple[str, RunSpec]] = []
    for scenario, good_wifi in SCENARIOS:
        for protocol in protocols:
            for engine in engines:
                key = f"{scenario}/{protocol}@{engine}"
                pairs.append(
                    (
                        key,
                        RunSpec(
                            protocol=protocol,
                            builder="static",
                            kwargs={
                                "good_wifi": good_wifi,
                                "download_bytes": mib(size_mb),
                            },
                            seed=0,
                            engine=engine,
                        ),
                    )
                )
    return pairs


def measure_spec(
    spec: RunSpec, repeats: int = 3
) -> Tuple[PerfRecord, Histogram]:
    """Execute ``spec`` ``repeats`` times; return the best repeat's
    record (max events/sec) plus the throughput distribution across
    repeats (for the p50 noise column of the bench table)."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    best: Optional[PerfRecord] = None
    dist = Histogram("events_per_sec")
    for _ in range(repeats):
        meter = PerfMeter(spec)
        start = time.perf_counter()
        spec.execute()
        record = meter.finish(time.perf_counter() - start)
        dist.observe(record.events_per_sec)
        if best is None or record.events_per_sec > best.events_per_sec:
            best = record
    assert best is not None
    return best, dist


#: Fleet size of the flow-tier bench entry: big enough that the
#: vectorized epoch loop dominates setup, small enough to stay
#: interactive inside the suite.
FLEET_BENCH_SESSIONS = 1_000
FLEET_BENCH_DURATION_S = 30.0


def measure_fleet(
    sessions: int = FLEET_BENCH_SESSIONS,
    duration_s: float = FLEET_BENCH_DURATION_S,
    repeats: int = 3,
) -> Dict[str, Any]:
    """One flow-tier fleet run as a bench record (best of ``repeats``).

    The flow tier advances whole fleets per epoch instead of
    dispatching simulator events, so its throughput metric is
    *session-steps* per wall second (one session advanced by one
    epoch = one "event"); the record is constructed directly with
    ``events = session_steps`` so the CHK601 ``events/wall_s``
    invariant holds exactly.
    """
    from repro.flow.fleet import FleetSpec, run_fleet

    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    spec = FleetSpec(sessions=sessions, duration_s=duration_s)
    best: Optional[Dict[str, Any]] = None
    dist = Histogram("events_per_sec")
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_fleet(spec)
        wall = time.perf_counter() - start
        eps = result.session_steps / wall if wall > 0 else 0.0
        dist.observe(eps)
        if best is None or eps > best["events_per_sec"]:
            best = {
                "schema": PERF_SCHEMA_VERSION,
                "spec_hash": result.spec_hash,
                "label": f"fleet-{sessions}",
                "engine": "flow",
                "wall_s": wall,
                "sim_s": result.sim_t_end_s,
                "events": result.session_steps,
                "events_per_sec": eps,
                "peak_rss_kb": peak_rss_kb(),
            }
    assert best is not None
    best.update(
        {
            "key": f"fleet-{sessions}/flow",
            "repeats": repeats,
            "sessions": sessions,
            "duration_s": duration_s,
            "events_per_sec_p50": dist.percentile(50),
        }
    )
    return best


#: Key of the batch-submit record: the fig5/fig6 fluid suite pushed
#: through :func:`~repro.runtime.executor.run_many` in one batch, so
#: the record measures the *runtime dispatch path* (queue, scheduler,
#: bookkeeping) on top of the simulations themselves.
BATCH_SUBMIT_KEY = "batch-fig56/submit"


def measure_batch_submit(
    size_mb: float = 4.0, repeats: int = 3
) -> Dict[str, Any]:
    """One batch-submit record: ``run_many`` over the fig5/fig6 fluid
    specs, uncached and serial (best of ``repeats``).

    Dispatch throughput here is events/sec *end to end through the
    runtime*, so a regression in the scheduler or queue bookkeeping
    shows up even when the per-run simulation speed is unchanged.
    """
    from repro.runtime.executor import run_many
    from repro.sim.engine import dispatch_stats

    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    specs = [
        spec for _, spec in bench_specs(size_mb, engines=("fluid",))
    ]
    best: Optional[Dict[str, Any]] = None
    dist = Histogram("events_per_sec")
    for _ in range(repeats):
        events0, sim0 = dispatch_stats().snapshot()
        start = time.perf_counter()
        run_many(specs, jobs=1, cache=None, manifest=None, progress=None,
                 obs=None, perf_store=None)
        wall = time.perf_counter() - start
        events1, sim1 = dispatch_stats().snapshot()
        events = events1 - events0
        eps = events / wall if wall > 0 else 0.0
        dist.observe(eps)
        if best is None or eps > best["events_per_sec"]:
            best = {
                "schema": PERF_SCHEMA_VERSION,
                "spec_hash": specs[0].content_hash(),
                "label": BATCH_SUBMIT_KEY,
                "engine": "fluid",
                "wall_s": wall,
                "sim_s": sim1 - sim0,
                "events": events,
                "events_per_sec": eps,
                "peak_rss_kb": peak_rss_kb(),
            }
    assert best is not None
    best.update(
        {
            "key": BATCH_SUBMIT_KEY,
            "repeats": repeats,
            "size_mb": size_mb,
            "batch_specs": len(specs),
            "events_per_sec_p50": dist.percentile(50),
        }
    )
    return best


def run_bench(
    size_mb: float = 4.0,
    repeats: int = 3,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    engines: Sequence[str] = DEFAULT_ENGINES,
    fleet_sessions: int = FLEET_BENCH_SESSIONS,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the suite; return a JSON-ready bench document.

    Alongside the per-figure download specs, the document carries one
    flow-tier fleet entry (``fleet-<n>/flow``, sessions-stepped per
    second); ``fleet_sessions=0`` skips it.
    """
    records: List[Dict[str, Any]] = []
    for key, spec in bench_specs(size_mb, protocols, engines):
        if progress is not None:
            progress(f"bench {key} ({size_mb:g} MiB x {repeats})")
        best, dist = measure_spec(spec, repeats)
        entry = best.to_dict()
        entry.update(
            {
                "key": key,
                "repeats": repeats,
                "size_mb": size_mb,
                "events_per_sec_p50": dist.percentile(50),
            }
        )
        records.append(entry)
    if fleet_sessions > 0:
        if progress is not None:
            progress(f"bench fleet-{fleet_sessions}/flow (x {repeats})")
        records.append(
            measure_fleet(sessions=fleet_sessions, repeats=repeats)
        )
    if progress is not None:
        progress(f"bench {BATCH_SUBMIT_KEY} (x {repeats})")
    records.append(measure_batch_submit(size_mb, repeats))
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "size_mb": size_mb,
        "repeats": repeats,
        "records": records,
    }


def write_bench(doc: Dict[str, Any], directory: Union[str, Path] = ".") -> Path:
    """Write ``doc`` as ``BENCH_<timestamp>.json`` under ``directory``."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    path = Path(directory) / f"{BENCH_PREFIX}{stamp}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def read_bench(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a bench record, failing loudly on a non-bench file."""
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read bench record: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(f"{path}: not JSON: {exc}") from exc
    if not isinstance(doc, dict) or "records" not in doc:
        raise ConfigurationError(
            f"{path}: not a bench record (no 'records' key)"
        )
    return doc


def latest_bench(directory: Union[str, Path] = ".") -> Optional[Path]:
    """The newest ``BENCH_*.json`` under ``directory`` (by timestamped
    name, which sorts chronologically), or None."""
    candidates = sorted(Path(directory).glob(f"{BENCH_PREFIX}*.json"))
    return candidates[-1] if candidates else None


def profiling_overhead(
    size_mb: float = 4.0, repeats: int = 3, engine: str = "packet"
) -> Dict[str, Any]:
    """Measure the cost of the profiler on one static-bw emptcp run.

    Two modes, min-of-``repeats`` each:

    * *disabled* (twice, independently) — every instrumented component
      carries only the ``is not None`` guard; the A/B delta bounds the
      measurement noise, demonstrating that the guard's cost is not
      distinguishable from run-to-run jitter (< a few percent);
    * *enabled* — the same run inside ``obs.capture(profile=True)``,
      showing what turning the profiler on actually costs.

    The packet engine is the default subject: its per-segment dispatch
    loop is the instrumented hot path and runs long enough (tens of
    ms) for percentages to mean something; the fluid run finishes in
    ~1 ms at this size and drowns in timer noise.
    """
    from repro import obs

    spec = RunSpec(
        protocol="emptcp",
        builder="static",
        kwargs={"good_wifi": True, "download_bytes": mib(size_mb)},
        seed=0,
        engine=engine,
    )

    def min_wall(profile: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            if profile:
                with obs.capture(trace=False, metrics=False, profile=True):
                    start = time.perf_counter()
                    spec.execute()
                    wall = time.perf_counter() - start
            else:
                start = time.perf_counter()
                spec.execute()
                wall = time.perf_counter() - start
            best = min(best, wall)
        return best

    off_a = min_wall(False)
    off_b = min_wall(False)
    on = min_wall(True)
    return {
        "engine": engine,
        "size_mb": size_mb,
        "repeats": repeats,
        "disabled_a_s": off_a,
        "disabled_b_s": off_b,
        "disabled_delta": abs(off_b - off_a) / off_a if off_a > 0 else 0.0,
        "enabled_s": on,
        "enabled_overhead": (on - off_a) / off_a if off_a > 0 else 0.0,
    }


def format_overhead(measure: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`profiling_overhead`."""
    return "\n".join(
        [
            f"profiler overhead on {measure['size_mb']:g} MiB static-bw "
            f"emptcp@{measure.get('engine', 'packet')} "
            f"(min of {int(measure['repeats'])}):",
            f"  disabled (guard only), run A: "
            f"{measure['disabled_a_s'] * 1e3:8.2f} ms",
            f"  disabled (guard only), run B: "
            f"{measure['disabled_b_s'] * 1e3:8.2f} ms   "
            f"A/B delta {measure['disabled_delta']:.1%}",
            f"  profiling enabled:            "
            f"{measure['enabled_s'] * 1e3:8.2f} ms   "
            f"overhead {measure['enabled_overhead']:+.1%}",
        ]
    )


@dataclass(frozen=True)
class BenchDelta:
    """One key's baseline-vs-current comparison."""

    key: str
    baseline_eps: float
    current_eps: float

    @property
    def ratio(self) -> float:
        """current / baseline events per second (1.0 = unchanged)."""
        if self.baseline_eps <= 0:
            return 1.0
        return self.current_eps / self.baseline_eps


@dataclass
class BenchComparison:
    """The result of diffing two bench documents."""

    threshold: float
    deltas: List[BenchDelta] = field(default_factory=list)
    #: Keys present in only one of the two documents.
    only_baseline: List[str] = field(default_factory=list)
    only_current: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.ratio < 1.0 - self.threshold]

    @property
    def improvements(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.ratio > 1.0 + self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _records_by_key(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    by_key: Dict[str, Dict[str, Any]] = {}
    for record in doc.get("records", []):
        key = record.get("key") or record.get("label", "?")
        by_key[str(key)] = record
    return by_key


def compare_bench(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff two bench documents on dispatch throughput per key."""
    if not 0 <= threshold < 1:
        raise ConfigurationError(
            f"threshold must be in [0, 1), got {threshold}"
        )
    base = _records_by_key(baseline)
    cur = _records_by_key(current)
    comparison = BenchComparison(threshold=threshold)
    for key in sorted(set(base) | set(cur)):
        if key not in cur:
            comparison.only_baseline.append(key)
        elif key not in base:
            comparison.only_current.append(key)
        else:
            comparison.deltas.append(
                BenchDelta(
                    key=key,
                    baseline_eps=float(base[key].get("events_per_sec", 0.0)),
                    current_eps=float(cur[key].get("events_per_sec", 0.0)),
                )
            )
    return comparison


def format_bench_table(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of one bench document."""
    lines = [
        f"{'scenario':<32} {'wall s':>8} {'sim s':>8} {'events':>9} "
        f"{'events/s':>10} {'p50 e/s':>10} {'RSS MB':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for record in doc.get("records", []):
        lines.append(
            f"{record.get('key', record.get('label', '?')):<32} "
            f"{record['wall_s']:>8.3f} {record['sim_s']:>8.1f} "
            f"{record['events']:>9d} {record['events_per_sec']:>10.0f} "
            f"{record.get('events_per_sec_p50', record['events_per_sec']):>10.0f} "
            f"{record.get('peak_rss_kb', 0) / 1024:>7.1f}"
        )
    return "\n".join(lines)


def format_comparison(comparison: BenchComparison) -> str:
    """Human-readable rendering of a :class:`BenchComparison`."""
    lines = [
        f"{'scenario':<32} {'baseline/s':>11} {'current/s':>11} "
        f"{'ratio':>6}  verdict"
    ]
    lines.append("-" * len(lines[0]))
    for delta in comparison.deltas:
        if delta.ratio < 1.0 - comparison.threshold:
            verdict = "REGRESSION"
        elif delta.ratio > 1.0 + comparison.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{delta.key:<32} {delta.baseline_eps:>11.0f} "
            f"{delta.current_eps:>11.0f} {delta.ratio:>6.2f}  {verdict}"
        )
    for key in comparison.only_baseline:
        lines.append(f"{key:<32} (missing from current record)")
    for key in comparison.only_current:
        lines.append(f"{key:<32} (new; no baseline)")
    n = len(comparison.regressions)
    lines.append(
        f"{n} regression(s) beyond {comparison.threshold:.0%} "
        f"across {len(comparison.deltas)} compared scenario(s)"
    )
    return "\n".join(lines)


__all__ = [
    "BATCH_SUBMIT_KEY",
    "BENCH_PREFIX",
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_ENGINES",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_THRESHOLD",
    "FLEET_BENCH_DURATION_S",
    "FLEET_BENCH_SESSIONS",
    "SCENARIOS",
    "BenchComparison",
    "BenchDelta",
    "bench_specs",
    "compare_bench",
    "format_bench_table",
    "format_comparison",
    "format_overhead",
    "latest_bench",
    "measure_batch_submit",
    "measure_fleet",
    "measure_spec",
    "profiling_overhead",
    "read_bench",
    "run_bench",
    "write_bench",
]
