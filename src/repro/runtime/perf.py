"""Per-run performance telemetry (``repro.runtime.perf``).

Every run the executor completes gets a :class:`PerfRecord` — wall
time, simulated time, events dispatched, dispatch throughput, peak
RSS, engine, and the spec's content hash.  The record rides along two
channels:

* the JSONL run manifest (``ManifestEntry.perf``), so "what ran" and
  "how fast it ran" live on the same line; and
* a content-addressed :class:`PerfStore` under
  ``<cache-dir>/perf/`` — one append-only ``<spec-hash>.jsonl`` per
  spec, so repeated executions of the same spec accumulate a history
  that regression analysis (``repro perf compare/check``) can reduce
  noise-aware (min-of-N).

Collection piggybacks on the engine's unconditional
:class:`~repro.sim.engine.DispatchStats` accumulator, so it works with
observability fully disabled and costs nothing beyond two counter
reads per run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.sim.engine import dispatch_stats

#: Bump when the record layout changes incompatibly.
PERF_SCHEMA_VERSION = 1

#: File under the perf root collecting result-store telemetry
#: snapshots (hits/misses/evictions), one JSON object per line.  Kept
#: apart from the ``<spec-hash>.jsonl`` histories.
CACHE_TELEMETRY_FILE = "cache-telemetry.jsonl"


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 where the
    ``resource`` module is unavailable, e.g. Windows)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        rss //= 1024
    return int(rss)


@dataclass(frozen=True)
class PerfRecord:
    """One run's performance facts."""

    spec_hash: str
    label: str
    engine: str
    wall_s: float
    sim_s: float
    events: int
    events_per_sec: float
    peak_rss_kb: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PERF_SCHEMA_VERSION,
            "spec_hash": self.spec_hash,
            "label": self.label,
            "engine": self.engine,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "peak_rss_kb": self.peak_rss_kb,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfRecord":
        return cls(
            spec_hash=str(data["spec_hash"]),
            label=str(data.get("label", "")),
            engine=str(data.get("engine", "fluid")),
            wall_s=float(data["wall_s"]),
            sim_s=float(data["sim_s"]),
            events=int(data["events"]),
            events_per_sec=float(data["events_per_sec"]),
            peak_rss_kb=int(data.get("peak_rss_kb", 0)),
        )


class PerfMeter:
    """Measures one run: snapshot the dispatch accumulator, run, diff.

    Usage (what the executor does)::

        meter = PerfMeter(spec)
        result = spec.execute()
        record = meter.finish(wall_s)
    """

    def __init__(self, spec: Any):
        self._spec_hash = spec.content_hash()
        self._label = spec.label
        self._engine = getattr(spec, "engine", "fluid")
        self._events0, self._sim0 = dispatch_stats().snapshot()

    def finish(self, wall_s: float) -> PerfRecord:
        events1, sim1 = dispatch_stats().snapshot()
        events = events1 - self._events0
        sim_s = sim1 - self._sim0
        return PerfRecord(
            spec_hash=self._spec_hash,
            label=self._label,
            engine=self._engine,
            wall_s=wall_s,
            sim_s=sim_s,
            events=events,
            events_per_sec=events / wall_s if wall_s > 0 else 0.0,
            peak_rss_kb=peak_rss_kb(),
        )


class PerfStore:
    """Content-addressed, append-only store of per-spec perf history."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}.jsonl"

    def record(self, rec: PerfRecord) -> Path:
        """Append one record to the spec's history file."""
        path = self.path_for(rec.spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(json.dumps(rec.to_dict(), sort_keys=True) + "\n")
        return path

    def history(self, spec_hash: str) -> List[PerfRecord]:
        """Every recorded execution of the spec, oldest first.

        Malformed lines (a crash mid-append) are skipped rather than
        poisoning the whole history.
        """
        path = self.path_for(spec_hash)
        records: List[PerfRecord] = []
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(PerfRecord.from_dict(json.loads(line)))
            except (KeyError, TypeError, ValueError):
                continue
        return records

    def best(self, spec_hash: str) -> Optional[PerfRecord]:
        """The fastest recorded execution (max events/sec) — the
        noise-aware representative of the spec's history."""
        history = self.history(spec_hash)
        if not history:
            return None
        return max(history, key=lambda r: r.events_per_sec)

    def spec_hashes(self) -> List[str]:
        """Hashes with at least one recorded execution."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.root.glob("*.jsonl")
            if p.name != CACHE_TELEMETRY_FILE
        )

    def cache_telemetry_path(self) -> Path:
        return self.root / CACHE_TELEMETRY_FILE

    def record_cache(self, counters: Dict[str, Any]) -> Path:
        """Append one result-store telemetry snapshot (hits / misses /
        evictions / …) so cache behaviour regresses visibly alongside
        per-spec throughput."""
        path = self.cache_telemetry_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(json.dumps(dict(counters), sort_keys=True) + "\n")
        return path

    def cache_telemetry(self) -> List[Dict[str, Any]]:
        """Recorded cache snapshots, oldest first (bad lines skipped)."""
        snapshots: List[Dict[str, Any]] = []
        try:
            lines = self.cache_telemetry_path().read_text().splitlines()
        except OSError:
            return snapshots
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict):
                snapshots.append(doc)
        return snapshots


__all__ = [
    "CACHE_TELEMETRY_FILE",
    "PERF_SCHEMA_VERSION",
    "PerfMeter",
    "PerfRecord",
    "PerfStore",
    "peak_rss_kb",
]
