"""Persistent, crash-recoverable job queue with dedup and priorities.

One :class:`JobQueue` holds the not-yet-finished work of a batch (or,
in the service, of the whole process lifetime).  Three properties make
it more than a list of specs:

* **spec-hash dedup** — submitting a :class:`~repro.runtime.spec.RunSpec`
  whose ``content_hash()`` is already queued does *not* create a second
  job; the existing job gains a waiter and every waiter observes the
  one execution's outcome.  This is what turns a thousand-run sweep
  with shared warm-up prefixes into the small set of distinct runs.
* **priorities and dependencies** — jobs carry an integer priority
  (higher pops first, FIFO within a priority) and an optional ``after``
  set of spec hashes; a job is *ready* only once every dependency is
  terminal.  The sweep planner lowers shared warm-up runs into plain
  dependency edges here.
* **a JSONL journal** — when constructed with a journal path (the
  service puts it under the cache dir), every transition appends one
  line.  :meth:`JobQueue.recover` replays a journal — including one
  truncated mid-line by a crash — and reconstructs the pending work, so
  a killed run resumes instead of restarting.

The queue is a plain thread-safe structure (``threading.Lock``); the
asyncio scheduler drives it from its loop, and the HTTP service
submits into it from request threads.  All wall-clock reads go through
the journaled :mod:`repro.runtime.clock` seam.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.runtime import clock
from repro.runtime.spec import RunSpec

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States from which a job will never run again.
TERMINAL_STATES = (DONE, FAILED)


@dataclass
class Job:
    """One distinct execution the queue owes its waiters."""

    spec: RunSpec
    spec_hash: str
    priority: int = 0
    after: Tuple[str, ...] = ()
    state: str = PENDING
    #: How many submissions coalesced into this job (>= 1).
    waiters: int = 1
    #: Execution attempts started so far (retries increment it).
    attempts: int = 0
    submitted_at: float = 0.0
    #: Terminal facts, filled by mark_done/mark_failed.
    outcome: str = ""
    result: Any = None
    error: Optional[BaseException] = None
    #: Execution details the scheduler fills for waiters/manifests.
    wall_s: float = 0.0
    worker: str = ""
    trace: str = ""
    perf: Optional[Dict[str, Any]] = None
    #: Distributed-trace context (:class:`repro.obs.dist.TraceContext`)
    #: for this job's span; None when tracing is off or the job was
    #: recovered from a journal (ctx is not journalled — a recovered
    #: job re-executes without spans rather than fabricating them).
    ctx: Optional[Any] = None
    #: Callbacks fired (outside the queue lock) when the job reaches a
    #: terminal state; late subscribers to an already-terminal job fire
    #: immediately.
    callbacks: List[Callable[["Job"], None]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass(frozen=True)
class QueueStats:
    """Counters over the queue's lifetime (not just current contents)."""

    submitted: int = 0
    deduped: int = 0
    started: int = 0
    completed: int = 0
    failed: int = 0
    recovered: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "started": self.started,
            "completed": self.completed,
            "failed": self.failed,
            "recovered": self.recovered,
        }


class JobQueue:
    """Priority queue of distinct (by spec hash) jobs, optionally
    journalled to ``<journal>`` as JSONL."""

    def __init__(self, journal: Optional[Union[str, Path]] = None):
        self.journal_path = Path(journal) if journal is not None else None
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        #: Ready-heap entries: (-priority, seq, hash).  Stale entries
        #: (job no longer pending) are skipped on pop.
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        #: dep hash -> hashes blocked on it.
        self._dependents: Dict[str, Set[str]] = {}
        self._journal_fh: Optional[Any] = None
        self._stats = {
            "submitted": 0,
            "deduped": 0,
            "started": 0,
            "completed": 0,
            "failed": 0,
            "recovered": 0,
        }

    # -- journal ----------------------------------------------------

    def _journal(self, event: str, job: Job, **extra: Any) -> None:
        if self.journal_path is None:
            return
        line: Dict[str, Any] = {
            "event": event,
            "hash": job.spec_hash,
            "t": clock.now(),
        }
        if event == "submit":
            line["spec"] = job.spec.to_dict()
            line["priority"] = job.priority
            if job.after:
                line["after"] = list(job.after)
        line.update(extra)
        if self._journal_fh is None:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
            self._journal_fh = open(self.journal_path, "a")
        self._journal_fh.write(json.dumps(line, sort_keys=True) + "\n")
        self._journal_fh.flush()
        os.fsync(self._journal_fh.fileno())

    # -- submission -------------------------------------------------

    def submit(
        self,
        spec: RunSpec,
        priority: int = 0,
        after: Iterable[str] = (),
        on_done: Optional[Callable[[Job], None]] = None,
        ctx: Optional[Any] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue ``spec`` (or join the existing job for its hash).

        Returns ``(job, fresh)`` — ``fresh`` is False when the spec
        coalesced into an already-queued (or already-finished) job.
        ``on_done`` fires once the job is terminal; if it already is,
        the callback fires before this call returns.  ``ctx`` attaches
        a trace context; on dedup the first submitter's context wins
        (its batch owns the span) unless none was attached yet.
        """
        spec_hash = spec.content_hash()
        fire_now: Optional[Job] = None
        with self._lock:
            job = self._jobs.get(spec_hash)
            if job is not None:
                job.waiters += 1
                if ctx is not None and job.ctx is None:
                    job.ctx = ctx
                self._stats["deduped"] += 1
                self._journal("dedup", job)
                if on_done is not None:
                    if job.terminal:
                        fire_now = job
                    elif on_done not in job.callbacks:
                        # The same subscriber (e.g. one batch's sink)
                        # joining a job twice must still fire once.
                        job.callbacks.append(on_done)
                fresh = False
            else:
                job = Job(
                    spec=spec,
                    spec_hash=spec_hash,
                    priority=priority,
                    after=tuple(dict.fromkeys(after)),
                    submitted_at=clock.now(),
                    ctx=ctx,
                )
                if on_done is not None:
                    job.callbacks.append(on_done)
                self._jobs[spec_hash] = job
                self._stats["submitted"] += 1
                self._journal("submit", job)
                self._index_ready_locked(job)
                fresh = True
        if fire_now is not None and on_done is not None:
            on_done(fire_now)
        return job, fresh

    def _index_ready_locked(self, job: Job) -> None:
        """Heap-push ``job`` if every dependency is terminal; otherwise
        park it under each open dependency.  A hash the queue has never
        seen counts as satisfied — you cannot wait on work nobody
        submitted, and the sweep planner submits warm-ups first."""
        open_deps = [
            dep
            for dep in job.after
            if dep in self._jobs and not self._jobs[dep].terminal
        ]
        if not open_deps:
            self._seq += 1
            heapq.heappush(
                self._heap, (-job.priority, self._seq, job.spec_hash)
            )
            return
        for dep in open_deps:
            self._dependents.setdefault(dep, set()).add(job.spec_hash)

    # -- consumption ------------------------------------------------

    def pop(self) -> Optional[Job]:
        """The highest-priority ready job, or None.  The job stays
        RUNNING-bound to the caller; pair with mark_* to finish it."""
        with self._lock:
            while self._heap:
                _, _, spec_hash = heapq.heappop(self._heap)
                job = self._jobs.get(spec_hash)
                if job is None or job.state != PENDING:
                    continue  # stale heap entry
                job.state = RUNNING
                job.attempts += 1
                self._stats["started"] += 1
                self._journal("start", job, attempt=job.attempts)
                return job
        return None

    def subscribe(self, job: Job, callback: Callable[[Job], None]) -> bool:
        """Register ``callback`` for ``job``'s terminal transition.

        Returns False when the job is already terminal — the caller
        fires the callback itself (outside our lock)."""
        with self._lock:
            if job.terminal:
                return False
            job.callbacks.append(callback)
            return True

    def note_retry(self, job: Job) -> None:
        """Journal another attempt of a job the caller keeps holding
        (the scheduler retries in place rather than re-popping)."""
        with self._lock:
            job.attempts += 1
            self._journal("retry", job, attempt=job.attempts)

    def requeue(self, job: Job) -> None:
        """Put a popped job back (retry): it becomes PENDING again and
        competes at its original priority."""
        with self._lock:
            job.state = PENDING
            self._journal("retry", job, attempt=job.attempts)
            self._seq += 1
            heapq.heappush(
                self._heap, (-job.priority, self._seq, job.spec_hash)
            )

    def mark_done(self, job: Job, outcome: str, result: Any = None) -> None:
        """Terminal success: record the outcome ("executed"/"cached"),
        release dependents, notify waiters."""
        with self._lock:
            job.state = DONE
            job.outcome = outcome
            job.result = result
            self._stats["completed"] += 1
            self._journal("done", job, outcome=outcome)
            callbacks = self._release_locked(job)
        for callback in callbacks:
            callback(job)

    def mark_failed(self, job: Job, error: BaseException) -> None:
        """Terminal failure.  Dependency edges are *scheduling* edges
        (warm-up ordering), not data edges, so dependents of a failed
        job are released to run rather than cascaded."""
        with self._lock:
            job.state = FAILED
            job.outcome = "failed"
            job.error = error
            self._stats["failed"] += 1
            self._journal("fail", job, error=str(error))
            callbacks = self._release_locked(job)
        for callback in callbacks:
            callback(job)

    def _release_locked(self, job: Job) -> List[Callable[[Job], None]]:
        """Unblock dependents of a now-terminal job; return (and clear)
        its waiter callbacks for firing outside the lock."""
        for dep_hash in self._dependents.pop(job.spec_hash, ()):
            dependent = self._jobs.get(dep_hash)
            if dependent is not None and dependent.state == PENDING:
                self._index_ready_locked(dependent)
        callbacks, job.callbacks = job.callbacks, []
        return callbacks

    # -- introspection ----------------------------------------------

    def get(self, spec_hash: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(spec_hash)

    def open_jobs(self) -> int:
        """Jobs not yet terminal (pending, blocked, or running)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if not job.terminal
            )

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    @property
    def stats(self) -> QueueStats:
        with self._lock:
            return QueueStats(**self._stats)

    def close(self) -> None:
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None

    # -- recovery ---------------------------------------------------

    @staticmethod
    def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Parse a journal, tolerating a torn final line (crash while
        appending) and blank lines."""
        events: List[Dict[str, Any]] = []
        try:
            lines = Path(path).read_text().splitlines()
        except OSError:
            return events
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn tail from a crash mid-append
            if isinstance(doc, dict) and "event" in doc:
                events.append(doc)
        return events

    @classmethod
    def recover(cls, journal: Union[str, Path]) -> "JobQueue":
        """Rebuild a queue from a journal: every submitted-but-not-
        terminal job comes back PENDING (a job that had ``start`` but no
        ``done``/``fail`` was in flight when the run died and runs
        again).  The recovered queue appends to the same journal."""
        queue = cls(journal=journal)
        specs: Dict[str, Dict[str, Any]] = {}
        waiters: Dict[str, int] = {}
        terminal: Set[str] = set()
        for event in cls.read_journal(journal):
            spec_hash = str(event.get("hash", ""))
            kind = event.get("event")
            if kind == "submit":
                specs[spec_hash] = event
                waiters[spec_hash] = waiters.get(spec_hash, 0) + 1
            elif kind == "dedup":
                waiters[spec_hash] = waiters.get(spec_hash, 0) + 1
            elif kind in ("done", "fail"):
                terminal.add(spec_hash)
        with queue._lock:
            for spec_hash, event in specs.items():
                if spec_hash in terminal:
                    continue
                try:
                    spec = RunSpec.from_dict(event["spec"])
                except (KeyError, TypeError, ValueError):
                    continue
                job = Job(
                    spec=spec,
                    spec_hash=spec_hash,
                    priority=int(event.get("priority", 0)),
                    after=tuple(event.get("after", ())),
                    waiters=max(1, waiters.get(spec_hash, 1)),
                    submitted_at=float(event.get("t", 0.0)),
                )
                queue._jobs[spec_hash] = job
                queue._stats["recovered"] += 1
            # Index readiness only once every surviving job is known:
            # a dependency that is absent (journalled terminal, or never
            # submitted) no longer blocks.
            for job in queue._jobs.values():
                job.after = tuple(
                    dep for dep in job.after if dep in queue._jobs
                )
                queue._index_ready_locked(job)
        return queue


__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "RUNNING",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "QueueStats",
]
