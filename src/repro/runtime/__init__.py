"""repro.runtime — the sharded experiment execution runtime.

Turns experiment execution into declarative, parallel, cached,
observable jobs.  Since the runtime split, four separable components
sit behind the :func:`run_many` facade:

* :mod:`repro.runtime.queue` — a persistent, crash-recoverable job
  queue (JSONL journal) with priorities, dependency edges, and
  spec-hash deduplication (one execution, many waiters);
* :mod:`repro.runtime.scheduler` — an asyncio scheduler feeding warm
  process pools with work stealing; timeouts, bounded retries, and
  the serial fallback live here as strategy objects;
* :mod:`repro.runtime.store` — the batched append-only segment store
  behind the result cache, with metadata-only stats and
  segment-granular eviction;
* :mod:`repro.runtime.service` — the stdlib HTTP/JSONL experiment
  service (submit/stream/status) plus the sweep-DAG planner.

Supporting cast, unchanged in spirit:

* :mod:`repro.runtime.spec` — picklable :class:`RunSpec`s with stable
  content hashes, plus the scenario-builder registry;
* :mod:`repro.runtime.executor` — the facade: ambient
  :class:`RuntimeContext`, :func:`run_many`/:func:`run_specs`;
* :mod:`repro.runtime.cache` — the content-addressed result cache
  (now over the segment store, with legacy-blob migration);
* :mod:`repro.runtime.clock` — the journaled wall-clock seam the
  determinism checks hold the queue/scheduler/store to;
* :mod:`repro.runtime.manifest` / :mod:`repro.runtime.progress` —
  JSONL run manifests and live runs/sec + ETA reporting;
* :mod:`repro.runtime.perf` / :mod:`repro.runtime.bench` — per-run
  performance records, the content-addressed perf store, and the
  ``repro perf record/compare`` benchmark suite.

Typical use::

    from repro.runtime import ResultCache, run_many, use_runtime
    from repro.experiments.static_bw import static_specs

    specs = static_specs(good_wifi=True, runs=10)
    with use_runtime(jobs=4, cache=ResultCache()):
        results = run_many(specs)
"""

from repro.runtime.cache import DEFAULT_CACHE_ROOT, CacheStats, ResultCache
from repro.runtime.executor import (
    RuntimeContext,
    current_context,
    group_results,
    run_many,
    run_specs,
    use_runtime,
)
from repro.runtime.manifest import (
    ManifestEntry,
    RunManifest,
    format_summary,
    summarize,
)
from repro.runtime.perf import PerfMeter, PerfRecord, PerfStore
from repro.runtime.progress import ProgressReporter, ProgressSnapshot
from repro.runtime.queue import Job, JobQueue, QueueStats
from repro.runtime.scheduler import (
    BatchSink,
    RetryPolicy,
    Scheduler,
    TimeoutPolicy,
)
from repro.runtime.service import ExperimentService, SweepPlan, plan_sweep
from repro.runtime.spec import (
    BuilderEntry,
    RunSpec,
    ScenarioRef,
    build_scenario,
    code_salt,
    get_builder,
    register_builder,
    register_scenario_builder,
    registered_builders,
)
from repro.runtime.store import SegmentStore, StoreTelemetry

__all__ = [
    "BatchSink",
    "BuilderEntry",
    "CacheStats",
    "DEFAULT_CACHE_ROOT",
    "ExperimentService",
    "Job",
    "JobQueue",
    "ManifestEntry",
    "PerfMeter",
    "PerfRecord",
    "PerfStore",
    "ProgressReporter",
    "ProgressSnapshot",
    "QueueStats",
    "ResultCache",
    "RetryPolicy",
    "RunManifest",
    "RunSpec",
    "RuntimeContext",
    "ScenarioRef",
    "Scheduler",
    "SegmentStore",
    "StoreTelemetry",
    "SweepPlan",
    "TimeoutPolicy",
    "build_scenario",
    "code_salt",
    "current_context",
    "format_summary",
    "get_builder",
    "group_results",
    "plan_sweep",
    "register_builder",
    "register_scenario_builder",
    "registered_builders",
    "run_many",
    "run_specs",
    "summarize",
    "use_runtime",
]
