"""repro.runtime — the parallel experiment execution runtime.

Turns experiment execution into declarative, parallel, cached,
observable jobs:

* :mod:`repro.runtime.spec` — picklable :class:`RunSpec`s with stable
  content hashes, plus the scenario-builder registry;
* :mod:`repro.runtime.executor` — :func:`run_many` over a process
  pool, with per-run timeouts, bounded retries, and serial fallback;
* :mod:`repro.runtime.cache` — a content-addressed on-disk result
  cache so re-running a report skips completed runs;
* :mod:`repro.runtime.manifest` / :mod:`repro.runtime.progress` —
  JSONL run manifests and live runs/sec + ETA reporting;
* :mod:`repro.runtime.perf` / :mod:`repro.runtime.bench` — per-run
  performance records, the content-addressed perf store, and the
  ``repro perf record/compare`` benchmark suite.

Typical use::

    from repro.runtime import ResultCache, run_many, use_runtime
    from repro.experiments.static_bw import static_specs

    specs = static_specs(good_wifi=True, runs=10)
    with use_runtime(jobs=4, cache=ResultCache()):
        results = run_many(specs)
"""

from repro.runtime.cache import DEFAULT_CACHE_ROOT, CacheStats, ResultCache
from repro.runtime.executor import (
    RuntimeContext,
    current_context,
    group_results,
    run_many,
    run_specs,
    use_runtime,
)
from repro.runtime.manifest import (
    ManifestEntry,
    RunManifest,
    format_summary,
    summarize,
)
from repro.runtime.perf import PerfMeter, PerfRecord, PerfStore
from repro.runtime.progress import ProgressReporter, ProgressSnapshot
from repro.runtime.spec import (
    BuilderEntry,
    RunSpec,
    ScenarioRef,
    build_scenario,
    code_salt,
    get_builder,
    register_builder,
    register_scenario_builder,
    registered_builders,
)

__all__ = [
    "BuilderEntry",
    "CacheStats",
    "DEFAULT_CACHE_ROOT",
    "ManifestEntry",
    "PerfMeter",
    "PerfRecord",
    "PerfStore",
    "ProgressReporter",
    "ProgressSnapshot",
    "ResultCache",
    "RunManifest",
    "RunSpec",
    "RuntimeContext",
    "ScenarioRef",
    "build_scenario",
    "code_salt",
    "current_context",
    "format_summary",
    "get_builder",
    "group_results",
    "register_builder",
    "register_scenario_builder",
    "registered_builders",
    "run_many",
    "run_specs",
    "summarize",
    "use_runtime",
]
