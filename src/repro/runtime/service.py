"""The experiment service: batch submission over HTTP, JSONL streaming.

:class:`ExperimentService` wraps the runtime's long-lived half: one
journalled :class:`~repro.runtime.queue.JobQueue`, one
:class:`~repro.runtime.scheduler.Scheduler` serving on a background
event loop with warm pools, one segment-backed
:class:`~repro.runtime.cache.ResultCache`, and one
:class:`~repro.runtime.perf.PerfStore` — all rooted under the cache
dir.  Batches submitted from any thread coalesce by spec hash (both
within and *across* batches: two clients submitting the same spec get
one execution and two streamed results).

:func:`serve_http` exposes it over a thin stdlib HTTP API:

* ``POST /v1/submit``  — ``{"specs": [spec-dict, ...], "priority": 0}``
  → batch summary (id, dedup/cached counts);
* ``POST /v1/sweep``   — a sweep request (see :func:`plan_sweep`)
  lowered into a warm-up DAG before submission;
* ``GET /v1/stream/<batch-id>`` — one JSONL line per finished run
  (result payload included), then a summary line; the response is
  connection-close delimited, so ``curl -N`` tails it live;
* ``GET /v1/status``   — queue/cache/scheduler counters;
* ``GET /v1/metrics``  — the live metrics plane: Prometheus text
  exposition (queue depth, per-shard in-flight, retry/steal/timeout
  counters, cache hit ratio, events/sec EWMA, store gauges);
* ``POST /v1/shutdown`` — drain and stop.

Every batch gets a deterministic distributed-trace id (salted with the
batch id); job/queue-wait/exec lifecycle spans land as
``<trace_id>.lifecycle.jsonl`` under the obs dir, reassembled by
``emptcp-repro trace tree`` — see docs/OBSERVABILITY.md.

The sweep planner turns a ``sweep_config``-style request into a DAG:
per seed, one *warm-up* run of the unmodified scenario, then every
parameter variant ordered ``after`` it.  Because dependency edges are
spec hashes, two sweeps sharing a scenario share warm-up executions
through ordinary queue dedup — the "shared warm-up prefix executes
once" property is an emergent feature of hashing, not special-cased.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from queue import Empty, Queue as _EventQueue
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs import ObsOptions
from repro.obs import dist as _dist
from repro.obs.prom import MetricFamily, registry_families, render_prometheus
from repro.runtime import clock
from repro.runtime.cache import DEFAULT_CACHE_ROOT, ResultCache
from repro.runtime.perf import PerfStore
from repro.runtime.queue import Job, JobQueue
from repro.runtime.scheduler import RetryPolicy, Scheduler, TimeoutPolicy
from repro.runtime.spec import RunSpec, ScenarioRef, get_builder

#: Where the service journals its queue, relative to the cache dir.
JOURNAL_NAME = "queue/journal.jsonl"


@dataclass(frozen=True)
class PlannedJob:
    """One node of a lowered sweep DAG."""

    spec: RunSpec
    #: Spec hashes this run is ordered after (warm-up edges).
    after: Tuple[str, ...] = ()
    role: str = "variant"


@dataclass(frozen=True)
class SweepPlan:
    """A sweep request lowered into dependency-ordered jobs."""

    jobs: Tuple[PlannedJob, ...]

    @property
    def warmups(self) -> int:
        return sum(1 for job in self.jobs if job.role == "warmup")

    @property
    def variants(self) -> int:
        return sum(1 for job in self.jobs if job.role == "variant")


def plan_sweep(request: Dict[str, Any]) -> SweepPlan:
    """Lower a ``sweep_config``-style request into a warm-up DAG.

    Request keys: ``builder`` (scenario builder name), ``parameter``
    (EMPTCPConfig field), ``values`` (list), plus optional ``kwargs``
    (builder arguments), ``protocol`` ("emptcp"), ``runs`` (seeds,
    default 1), and ``engine`` ("fluid").

    Per seed the plan holds one warm-up run of the unmodified scenario
    and one variant per value ordered after it, so a scheduler can
    overlap nothing that would cold-start the same scenario twice.
    """
    try:
        builder = str(request["builder"])
        parameter = str(request["parameter"])
        values = list(request["values"])
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"sweep request needs builder/parameter/values: {exc}"
        ) from exc
    if not values:
        raise ConfigurationError("sweep request has an empty values list")
    scenario = ScenarioRef(
        builder=builder, kwargs=dict(request.get("kwargs", {}))
    )
    protocol = str(request.get("protocol", "emptcp"))
    engine = str(request.get("engine", "fluid"))
    runs = int(request.get("runs", 1))
    if runs < 1:
        raise ConfigurationError(f"sweep runs must be >= 1, got {runs}")
    jobs: List[PlannedJob] = []
    for seed in range(runs):
        warmup = scenario.spec(protocol, seed=seed, engine=engine)
        jobs.append(PlannedJob(spec=warmup, role="warmup"))
        warmup_hash = warmup.content_hash()
        for value in values:
            jobs.append(
                PlannedJob(
                    spec=scenario.spec(
                        protocol,
                        seed=seed,
                        config={parameter: value},
                        engine=engine,
                    ),
                    after=(warmup_hash,),
                )
            )
    return SweepPlan(jobs=tuple(jobs))


@dataclass
class _Batch:
    """Server-side bookkeeping for one submitted batch."""

    batch_id: str
    labels: List[str]
    hashes: List[str]
    created_t: float
    trace_id: str = ""
    events: "_EventQueue[Dict[str, Any]]" = field(
        default_factory=_EventQueue
    )
    outcomes: Dict[str, int] = field(default_factory=dict)
    finished: int = 0
    #: Guard so the batch-root lifecycle span is recorded exactly once.
    root_recorded: bool = False

    @property
    def total(self) -> int:
        return len(self.labels)

    @property
    def done(self) -> bool:
        return self.finished >= self.total

    def describe(self) -> Dict[str, Any]:
        return {
            "batch": self.batch_id,
            "total": self.total,
            "finished": self.finished,
            "outcomes": dict(self.outcomes),
            "done": self.done,
            "trace_id": self.trace_id,
        }


class ExperimentService:
    """The long-lived runtime: journalled queue + warm scheduler.

    Thread model: HTTP handler threads call :meth:`submit_batch` /
    :meth:`stream_batch` / :meth:`status`; the scheduler owns a private
    event loop on a background thread; the queue mediates (it is the
    only structure both sides touch, and it locks internally).  The
    result cache is touched only from the scheduler side.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path] = DEFAULT_CACHE_ROOT,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 2,
        verify: bool = True,
        journal: bool = True,
        obs: Optional[ObsOptions] = None,
    ):
        self.cache_dir = Path(cache_dir)
        self.verify = verify
        self.cache = ResultCache(self.cache_dir)
        self.perf_store = PerfStore(self.cache_dir / "perf")
        self.queue = JobQueue(
            journal=self.cache_dir / JOURNAL_NAME if journal else None
        )
        self.obs = obs
        #: Lifecycle spans are always on for the service (they are per
        #: job, not per event — cheap); run-level obs capture follows
        #: ``obs``.  Both land under the obs dir so ``trace tree`` sees
        #: one correlated directory.
        self.obs_dir = (
            Path(obs.dir) if obs is not None else self.cache_dir / "obs"
        )
        self.recorder = _dist.SpanRecorder(sink_dir=self.obs_dir)
        self.scheduler = Scheduler(
            jobs=jobs,
            retry=RetryPolicy(retries=retries),
            timeout=TimeoutPolicy(timeout_s),
            obs=obs,
            cache=self.cache,
            perf_store=self.perf_store,
        )
        self.scheduler.worker_cache_check = True
        self.scheduler.recorder = self.recorder
        self.scheduler.flight_dir = self.cache_dir / "flight"
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._lock = threading.Lock()
        self._batches: Dict[str, _Batch] = {}
        self._batch_seq = 0
        self._started_t = 0.0

    # -- lifecycle --------------------------------------------------

    def start(self) -> "ExperimentService":
        """Spin up the scheduler loop; returns self once it serves."""
        if self._thread is not None:
            return self

        def _serve() -> None:
            import asyncio

            async def _main() -> None:
                self._started.set()
                await self.scheduler.serve(self.queue)

            asyncio.run(_main())

        self._started_t = clock.now()
        self._thread = threading.Thread(
            target=_serve, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        return self

    def stop(self) -> None:
        """Drain outstanding work, stop the scheduler, close the queue."""
        if self._thread is None:
            return
        self.scheduler.stop()
        self._thread.join(timeout=60.0)
        self._thread = None
        self.queue.close()
        self.cache.store.close()

    def __enter__(self) -> "ExperimentService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- submission -------------------------------------------------

    def _parse_specs(self, spec_dicts: List[Dict[str, Any]]) -> List[RunSpec]:
        specs = [RunSpec.from_dict(doc) for doc in spec_dicts]
        if not specs:
            raise ConfigurationError("batch has no specs")
        if self.verify:
            from repro.check.config import verify_specs

            report = verify_specs(specs)
            if not report.ok:
                raise ConfigurationError(
                    "batch rejected by pre-dispatch verification:\n"
                    + "\n".join(
                        f.format()
                        for f in report.sorted_findings()
                        if f.severity.value == "error"
                    )
                )
        return specs

    def _submit(
        self,
        specs: List[RunSpec],
        priority: int = 0,
        after: Optional[List[Tuple[str, ...]]] = None,
    ) -> Dict[str, Any]:
        with self._lock:
            self._batch_seq += 1
            batch_id = f"b{self._batch_seq:05d}"
            hashes = [spec.content_hash() for spec in specs]
            # Salted with the batch id: resubmitting the same specs in
            # a later batch gets its own trace (cross-batch dedup means
            # the later trace may have no exec spans — the first batch
            # owns the execution).
            root_ctx = _dist.root_context(hashes, salt=batch_id)
            batch = _Batch(
                batch_id=batch_id,
                labels=[spec.label for spec in specs],
                hashes=hashes,
                created_t=clock.now(),
                trace_id=root_ctx.trace_id,
            )
            self._batches[batch.batch_id] = batch
        fresh_count = 0
        for index, spec in enumerate(specs):
            deps = after[index] if after is not None else ()
            job, fresh = self.queue.submit(
                spec, priority=priority, after=deps,
                ctx=root_ctx.child(_dist.SPAN_JOB, batch.hashes[index]),
            )
            fresh_count += 1 if fresh else 0
            callback = self._make_callback(batch, index, fresh)
            if not self.queue.subscribe(job, callback):
                callback(job)  # already terminal: emit immediately
        self.scheduler.kick_threadsafe()
        summary = batch.describe()
        summary.update({"submitted": len(specs), "fresh": fresh_count,
                        "coalesced": len(specs) - fresh_count})
        return summary

    def _make_callback(self, batch: _Batch, index: int, fresh: bool) -> Any:
        def _on_done(job: Job) -> None:
            if job.state == "failed":
                outcome = "failed"
            elif fresh:
                outcome = job.outcome  # "executed" | "cached"
            else:
                # This submission coalesced onto someone else's job (or
                # onto an already-finished one): it never executed.
                outcome = "cached" if job.outcome == "cached" else "deduped"
            event: Dict[str, Any] = {
                "event": "job",
                "batch": batch.batch_id,
                "index": index,
                "label": batch.labels[index],
                "hash": job.spec_hash,
                "outcome": outcome,
                "wall_s": job.wall_s,
                "attempts": job.attempts,
                "worker": job.worker,
            }
            if job.state == "failed":
                event["error"] = str(job.error)
            elif job.result is not None:
                try:
                    event["result"] = get_builder(job.spec.builder).encode(
                        job.result
                    )
                except Exception:
                    event["result"] = None
            with self._lock:
                batch.finished += 1
                batch.outcomes[outcome] = batch.outcomes.get(outcome, 0) + 1
                record_root = batch.done and not batch.root_recorded
                if record_root:
                    batch.root_recorded = True
            # Close the root span and flush telemetry *before* the
            # event that lets stream waiters observe completion, so a
            # status()/scrape racing the last callback sees them.
            if record_root:
                self._record_batch_root(batch)
                # One durable store-telemetry snapshot per batch, same
                # as the batch runtime's run_batch() path.
                self.scheduler.flush_telemetry(self.queue)
            batch.events.put(event)

        return _on_done

    def _record_batch_root(self, batch: _Batch) -> None:
        """Close the batch's root lifecycle span (submission → last
        job terminal).  Job spans are recorded before their jobs turn
        terminal, so the root always ends last."""
        failed = batch.outcomes.get("failed", 0)
        self.recorder.record(_dist.LifecycleSpan(
            trace_id=batch.trace_id,
            span_id=_dist.span_id_for(batch.trace_id, _dist.SPAN_BATCH),
            parent_span_id="",
            name=_dist.SPAN_BATCH,
            start_t=batch.created_t,
            end_t=clock.now(),
            status="failed" if failed else "ok",
            attrs={
                "batch": batch.batch_id,
                "jobs": batch.total,
                "outcomes": dict(batch.outcomes),
            },
        ))

    def submit_batch(
        self, spec_dicts: List[Dict[str, Any]], priority: int = 0
    ) -> Dict[str, Any]:
        """Validate, verify, and enqueue a batch of spec dicts."""
        return self._submit(self._parse_specs(spec_dicts), priority=priority)

    def submit_sweep(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Lower a sweep request into its DAG and enqueue it."""
        plan = plan_sweep(request)
        specs = [job.spec for job in plan.jobs]
        if self.verify:
            self._parse_specs([spec.to_dict() for spec in specs])
        summary = self._submit(
            specs,
            priority=int(request.get("priority", 0)),
            after=[job.after for job in plan.jobs],
        )
        summary["plan"] = {
            "warmups": plan.warmups,
            "variants": plan.variants,
        }
        return summary

    # -- consumption ------------------------------------------------

    def get_batch(self, batch_id: str) -> _Batch:
        with self._lock:
            try:
                return self._batches[batch_id]
            except KeyError:
                raise ConfigurationError(
                    f"unknown batch {batch_id!r}"
                ) from None

    def stream_batch(
        self, batch_id: str, timeout_s: float = 300.0
    ) -> Iterator[Dict[str, Any]]:
        """Yield one event dict per finished run, then a summary.

        Events already drained by a previous stream of the same batch
        are not replayed; the summary always is.
        """
        batch = self.get_batch(batch_id)
        deadline = clock.monotonic() + timeout_s
        yielded = 0
        while True:
            with self._lock:
                drained = batch.done and batch.events.qsize() == 0
            if drained:
                break
            try:
                yield batch.events.get(timeout=0.2)
                yielded += 1
            except Empty:
                if clock.monotonic() > deadline:
                    yield {
                        "event": "timeout",
                        "batch": batch_id,
                        "after_events": yielded,
                    }
                    return
        summary = batch.describe()
        summary["event"] = "summary"
        yield summary

    def batch_status(self, batch_id: str) -> Dict[str, Any]:
        return self.get_batch(batch_id).describe()

    def status(self) -> Dict[str, Any]:
        """Queue/cache/scheduler counters for ``GET /v1/status``."""
        stats = self.cache.stats()
        with self._lock:
            batches = {
                batch_id: batch.describe()
                for batch_id, batch in self._batches.items()
            }
        try:
            snapshots = self.perf_store.cache_telemetry()
        except (OSError, ValueError):
            snapshots = []
        return {
            "uptime_s": max(0.0, clock.now() - self._started_t),
            "jobs": self.scheduler.jobs,
            "queue": self.queue.stats.to_dict(),
            "open_jobs": self.queue.open_jobs(),
            "inflight": dict(self.scheduler.inflight),
            "cache": {
                "root": stats.root,
                "entries": stats.entries,
                "total_bytes": stats.total_bytes,
                "segments": stats.segments,
                "legacy_entries": stats.legacy_entries,
                **self.cache.telemetry.to_dict(),
            },
            "cache_telemetry": {
                "snapshots": len(snapshots),
                "last": snapshots[-1] if snapshots else None,
            },
            "scheduler": self.scheduler.metrics.to_dict()["counters"],
            "spans_recorded": self.recorder.recorded,
            "events_per_sec_ewma": self.scheduler.events_ewma,
            "batches": batches,
        }

    # -- metrics plane ----------------------------------------------

    def metrics_text(self) -> str:
        """The Prometheus exposition document for ``GET /v1/metrics``.

        Series: queue lifetime counters and depth, per-shard in-flight
        gauges, the scheduler's retry/steal/timeout/cache counters,
        result-store telemetry with a derived hit ratio, store size
        gauges, the events/sec EWMA, and recorder/batch totals.
        """
        families: List[MetricFamily] = []
        for key, value in self.queue.stats.to_dict().items():
            families.append(
                MetricFamily(
                    f"repro_queue_{key}_total",
                    "counter",
                    f"queue jobs {key} since start",
                ).add(float(value))
            )
        families.append(
            MetricFamily(
                "repro_queue_open_jobs", "gauge", "jobs not yet terminal"
            ).add(float(self.queue.open_jobs()))
        )
        inflight = MetricFamily(
            "repro_jobs_in_flight", "gauge", "jobs executing per shard"
        )
        for shard, count in sorted(self.scheduler.inflight.items()):
            inflight.add(float(count), shard=shard)
        families.append(inflight)
        families.extend(registry_families(self.scheduler.metrics))
        telemetry = self.cache.telemetry.to_dict()
        for key, value in telemetry.items():
            families.append(
                MetricFamily(
                    f"repro_store_{key}_total",
                    "counter",
                    f"result store {key} since start",
                ).add(float(value))
            )
        lookups = telemetry.get("hits", 0) + telemetry.get("misses", 0)
        families.append(
            MetricFamily(
                "repro_cache_hit_ratio",
                "gauge",
                "store hits / lookups since start",
            ).add(telemetry.get("hits", 0) / lookups if lookups else 0.0)
        )
        stats = self.cache.stats()
        families.append(
            MetricFamily(
                "repro_store_entries", "gauge", "indexed store entries"
            ).add(float(stats.entries))
        )
        families.append(
            MetricFamily(
                "repro_store_bytes", "gauge", "store size on disk"
            ).add(float(stats.total_bytes))
        )
        families.append(
            MetricFamily(
                "repro_store_segments", "gauge", "store segment files"
            ).add(float(stats.segments))
        )
        if self.scheduler.events_ewma is not None:
            families.append(
                MetricFamily(
                    "repro_events_per_sec_ewma",
                    "gauge",
                    "EWMA of per-run simulated events per second",
                ).add(self.scheduler.events_ewma)
            )
        with self._lock:
            batch_count = len(self._batches)
        families.append(
            MetricFamily(
                "repro_batches_total", "counter", "batches submitted"
            ).add(float(batch_count))
        )
        families.append(
            MetricFamily(
                "repro_spans_recorded_total",
                "counter",
                "lifecycle spans recorded",
            ).add(float(self.recorder.recorded))
        )
        families.append(
            MetricFamily(
                "repro_uptime_seconds", "gauge", "service uptime"
            ).add(max(0.0, clock.now() - self._started_t))
        )
        return render_prometheus(families)


# -- HTTP layer -----------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes the /v1 API onto an :class:`ExperimentService`."""

    service: ExperimentService  # bound by serve_http
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, *_args: Any) -> None:  # pragma: no cover
        pass  # the CLI decides what to print, not every request

    def _send_json(self, code: int, doc: Dict[str, Any]) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b"{}"
        doc = json.loads(raw.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ConfigurationError("request body must be a JSON object")
        return doc

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/v1/submit":
                body = self._read_body()
                summary = self.service.submit_batch(
                    body.get("specs", []),
                    priority=int(body.get("priority", 0)),
                )
                self._send_json(200, summary)
            elif self.path == "/v1/sweep":
                summary = self.service.submit_sweep(self._read_body())
                self._send_json(200, summary)
            elif self.path == "/v1/shutdown":
                self._send_json(200, {"ok": True})
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._send_json(404, {"error": f"no such route {self.path}"})
        except (ConfigurationError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/v1/status":
                self._send_json(200, self.service.status())
            elif self.path == "/v1/metrics":
                body = self.service.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif self.path.startswith("/v1/stream/"):
                self._stream(self.path[len("/v1/stream/"):])
            else:
                self._send_json(404, {"error": f"no such route {self.path}"})
        except (ConfigurationError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})

    def _stream(self, batch_id: str) -> None:
        events = self.service.stream_batch(batch_id)  # may raise -> 400
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        # JSONL streams are delimited by connection close, not length.
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for event in events:
                self.wfile.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client hung up mid-stream
        self.close_connection = True


def serve_http(
    service: ExperimentService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """Start the HTTP front-end on ``host:port`` (0 = ephemeral).

    Returns the running server; ``server.server_address[1]`` is the
    bound port, and ``server.shutdown()`` stops the serving thread.
    """
    handler = type(
        "_BoundServiceHandler", (_ServiceHandler,), {"service": service}
    )
    server = ThreadingHTTPServer((host, port), handler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    # Joinable handle so callers can block until /v1/shutdown lands.
    server.serve_thread = thread  # type: ignore[attr-defined]
    return server


__all__ = [
    "JOURNAL_NAME",
    "ExperimentService",
    "PlannedJob",
    "SweepPlan",
    "plan_sweep",
    "serve_http",
]
