"""The runtime facade: ambient context + dispatch into the scheduler.

:func:`run_many` takes a list of picklable
:class:`~repro.runtime.spec.RunSpec`s and returns their results in
order.  Since the runtime split it is deliberately thin: it resolves
the ambient :class:`RuntimeContext`, statically verifies the batch,
submits every spec into a :class:`~repro.runtime.queue.JobQueue`
(where identical spec hashes coalesce into one job with many waiters),
and hands the queue to a :class:`~repro.runtime.scheduler.Scheduler`.
Cache lookup, pool management, timeouts, retries, and the serial
fallback all live behind the scheduler; manifest lines, progress
counting, and result ordering live in the
:class:`~repro.runtime.scheduler.BatchSink`.

Experiment modules call :func:`run_specs`, which executes under the
*ambient* :class:`RuntimeContext` — serial and uncached by default, so
library behaviour is unchanged until a caller opts in::

    with use_runtime(jobs=4, cache=ResultCache()):
        results = run_static(True, runs=10)   # 30 parallel, cached runs
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace as _dc_replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro import obs as _obs
from repro.errors import ConfigurationError, ExecutionError
from repro.obs import dist as _dist
from repro.runtime import clock
from repro.runtime.cache import ResultCache
from repro.runtime.manifest import RunManifest
from repro.runtime.perf import PerfStore
from repro.runtime.progress import auto_reporter
from repro.runtime.queue import JobQueue
from repro.runtime.scheduler import (
    BatchSink,
    RetryPolicy,
    Scheduler,
    TimeoutPolicy,
    retry_delay_s,
)
from repro.runtime.spec import RunSpec

__all__ = [
    "RuntimeContext",
    "current_context",
    "group_results",
    "retry_delay_s",
    "run_many",
    "run_specs",
    "use_runtime",
]

#: Sentinel distinguishing "inherit from the ambient context" from an
#: explicit None (= disable).
_INHERIT: Any = object()


@dataclass
class RuntimeContext:
    """Everything :func:`run_many` needs beyond the specs themselves."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    manifest: Optional[RunManifest] = None
    #: False/None, True (stderr), or a :class:`ProgressReporter`.
    progress: Any = None
    #: Per-run wall-clock budget, seconds (None = unlimited).
    timeout_s: Optional[float] = None
    #: Extra attempts after a crash or timeout (not after a
    #: deterministic simulation failure, which would just fail again).
    retries: int = 2
    #: Base backoff between retry waves, seconds.
    backoff_s: float = 0.5
    #: Hard ceiling on any single retry delay, seconds.
    max_backoff_s: float = 30.0
    #: Per-run trace/metrics capture (None = observability off).
    obs: Optional[_obs.ObsOptions] = None
    #: Where per-run :class:`~repro.runtime.perf.PerfRecord`s
    #: accumulate (None = manifest-only; records are computed either
    #: way, they just aren't persisted per spec hash).
    perf_store: Optional[PerfStore] = None
    #: Statically verify every spec before dispatch (repro.check Tier
    #: 2): unknown builders, bad config overrides, missing input files
    #: fail here instead of inside a pool worker.
    verify: bool = True
    #: Optional JSONL queue-journal path: every batch's submissions and
    #: transitions append here, and a killed run's journal replays via
    #: ``JobQueue.recover``.  None (the default) keeps batches
    #: journal-free; the service always journals under its cache dir.
    journal: Optional[Union[str, Path]] = None


_ambient = RuntimeContext()
_ambient_lock = threading.Lock()


def current_context() -> RuntimeContext:
    """The ambient runtime context (serial/uncached unless configured)."""
    return _ambient


@contextmanager
def use_runtime(**overrides: Any):
    """Temporarily replace fields of the ambient context.

    Accepts any :class:`RuntimeContext` field, e.g.
    ``use_runtime(jobs=4, cache=ResultCache())``.  Nesting composes:
    inner overrides win, everything else is inherited.
    """
    global _ambient
    with _ambient_lock:
        previous = _ambient
        _ambient = _dc_replace(previous, **overrides)
    try:
        yield _ambient
    finally:
        with _ambient_lock:
            _ambient = previous


def run_specs(specs: Sequence[RunSpec], **overrides: Any) -> List[Any]:
    """Run specs under the ambient context (plus keyword overrides)."""
    return run_many(specs, **overrides)


def group_results(
    specs: Sequence[RunSpec],
    results: Sequence[Any],
    key: Callable[[RunSpec], Any] = lambda spec: spec.protocol,
) -> Dict[Any, List[Any]]:
    """Regroup ordered results, by protocol unless told otherwise."""
    grouped: Dict[Any, List[Any]] = {}
    for spec, result in zip(specs, results):
        grouped.setdefault(key(spec), []).append(result)
    return grouped


def run_many(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Any = _INHERIT,
    manifest: Any = _INHERIT,
    progress: Any = _INHERIT,
    timeout_s: Any = _INHERIT,
    retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    max_backoff_s: Optional[float] = None,
    obs: Any = _INHERIT,
    verify: Optional[bool] = None,
    perf_store: Any = _INHERIT,
    journal: Any = _INHERIT,
) -> List[Any]:
    """Execute every spec; return results in spec order.

    Raises :class:`~repro.errors.ExecutionError` if any run ultimately
    failed (all successful results up to that point are cached, so a
    re-invocation resumes where it left off), and
    :class:`~repro.errors.ConfigurationError` if pre-dispatch
    verification rejects a spec (disable with ``verify=False``).
    """
    ctx = current_context()
    jobs = ctx.jobs if jobs is None else jobs
    cache = ctx.cache if cache is _INHERIT else cache
    manifest = ctx.manifest if manifest is _INHERIT else manifest
    progress = ctx.progress if progress is _INHERIT else progress
    timeout_s = ctx.timeout_s if timeout_s is _INHERIT else timeout_s
    retries = ctx.retries if retries is None else retries
    backoff_s = ctx.backoff_s if backoff_s is None else backoff_s
    max_backoff_s = ctx.max_backoff_s if max_backoff_s is None else max_backoff_s
    obs = ctx.obs if obs is _INHERIT else obs
    verify = ctx.verify if verify is None else verify
    perf_store = ctx.perf_store if perf_store is _INHERIT else perf_store
    journal = ctx.journal if journal is _INHERIT else journal
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")

    specs = list(specs)
    if verify:
        _verify_before_dispatch(specs)

    scheduler = Scheduler(
        jobs=jobs,
        retry=RetryPolicy(
            retries=retries, backoff_s=backoff_s, max_backoff_s=max_backoff_s
        ),
        timeout=TimeoutPolicy(timeout_s),
        obs=obs,
        cache=cache,
        perf_store=perf_store,
    )
    sink = BatchSink(
        specs, manifest=manifest, reporter=auto_reporter(progress)
    )
    # Distributed tracing: one deterministic trace per batch content
    # (no salt — re-running an identical batch reuses its trace and the
    # recorder replaces the old lifecycle file).  Only active when obs
    # capture is on, so the disabled path pays nothing.
    hashes = [spec.content_hash() for spec in specs]
    root_ctx: Optional[_dist.TraceContext] = None
    if obs is not None and obs.enabled:
        root_ctx = _dist.root_context(hashes)
        scheduler.recorder = _dist.SpanRecorder(sink_dir=Path(obs.dir))
        scheduler.flight_dir = (
            manifest.path.parent if manifest is not None else Path(obs.dir)
        )
    batch_start = clock.now()
    queue = JobQueue(journal=journal)
    try:
        for index, spec in enumerate(specs):
            ctx = (
                root_ctx.child(_dist.SPAN_JOB, hashes[index])
                if root_ctx is not None
                else None
            )
            job, _ = queue.submit(spec, on_done=sink.on_terminal, ctx=ctx)
            sink.register(index, job)
        scheduler.run_batch(queue, sink)
    finally:
        if root_ctx is not None and scheduler.recorder is not None:
            scheduler.recorder.record(_dist.LifecycleSpan(
                trace_id=root_ctx.trace_id,
                span_id=root_ctx.span_id,
                parent_span_id="",
                name=_dist.SPAN_BATCH,
                start_t=batch_start,
                end_t=clock.now(),
                status="failed" if sink.failures else "ok",
                attrs={"jobs": len(specs)},
            ))
        queue.close()

    if sink.failures:
        failures = sorted(sink.failures, key=lambda pair: pair[0])
        first_index, first_exc = failures[0]
        raise ExecutionError(
            f"{len(failures)} of {len(specs)} runs failed; first: "
            f"{specs[first_index].label}: {first_exc}"
        ) from first_exc
    return sink.results


def _verify_before_dispatch(specs: Sequence[RunSpec]) -> None:
    """Apply the Tier-2 static verifier to a batch before any run.

    Only error-severity findings refuse the batch; warnings (e.g.
    EMPTCPConfig-shaped overrides on a custom builder) are ignored
    here and surfaced by ``repro check config`` instead.
    """
    from repro.check.config import verify_specs

    report = verify_specs(specs)
    if not report.ok:
        raise ConfigurationError(
            "pre-dispatch verification failed:\n"
            + "\n".join(f.format() for f in report.sorted_findings()
                        if f.severity.value == "error")
        )
