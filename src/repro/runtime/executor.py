"""Parallel experiment execution with caching, retries, and manifests.

:func:`run_many` takes a list of picklable
:class:`~repro.runtime.spec.RunSpec`s and returns their results in
order.  Each spec is first looked up in the result cache; the misses
are executed either in-process (``jobs=1``) or on a
``ProcessPoolExecutor``, with a per-run timeout (pre-emptive via
``SIGALRM`` where available, a post-hoc wall-clock check elsewhere —
see :func:`_deadline`), bounded retry with backoff when a worker
crashes or times out, and graceful fallback to serial execution when a
pool cannot be created at all.  Every terminal outcome is recorded in
the run manifest and counted by the progress reporter.  With
:class:`~repro.obs.ObsOptions` set, each executed run captures its own
trace/metrics session, exported next to the manifest keyed by the
spec's content hash.

Experiment modules call :func:`run_specs`, which executes under the
*ambient* :class:`RuntimeContext` — serial and uncached by default, so
library behaviour is unchanged until a caller opts in::

    with use_runtime(jobs=4, cache=ResultCache()):
        results = run_static(True, runs=10)   # 30 parallel, cached runs
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import threading
import time
from concurrent.futures import as_completed
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, replace as _dc_replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.errors import ConfigurationError, ExecutionError
from repro.runtime.cache import ResultCache
from repro.runtime.manifest import RunManifest
from repro.runtime.perf import PerfMeter, PerfRecord, PerfStore
from repro.runtime.progress import ProgressReporter, auto_reporter
from repro.runtime.spec import RunSpec, get_builder

#: Sentinel distinguishing "inherit from the ambient context" from an
#: explicit None (= disable).
_INHERIT: Any = object()


@dataclass
class RuntimeContext:
    """Everything :func:`run_many` needs beyond the specs themselves."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    manifest: Optional[RunManifest] = None
    #: False/None, True (stderr), or a :class:`ProgressReporter`.
    progress: Any = None
    #: Per-run wall-clock budget, seconds (None = unlimited).
    timeout_s: Optional[float] = None
    #: Extra attempts after a crash or timeout (not after a
    #: deterministic simulation failure, which would just fail again).
    retries: int = 2
    #: Base backoff between retry waves, seconds.
    backoff_s: float = 0.5
    #: Hard ceiling on any single retry delay, seconds.
    max_backoff_s: float = 30.0
    #: Per-run trace/metrics capture (None = observability off).
    obs: Optional[_obs.ObsOptions] = None
    #: Where per-run :class:`~repro.runtime.perf.PerfRecord`s
    #: accumulate (None = manifest-only; records are computed either
    #: way, they just aren't persisted per spec hash).
    perf_store: Optional[PerfStore] = None
    #: Statically verify every spec before dispatch (repro.check Tier
    #: 2): unknown builders, bad config overrides, missing input files
    #: fail here instead of inside a pool worker.
    verify: bool = True


_ambient = RuntimeContext()
_ambient_lock = threading.Lock()


def current_context() -> RuntimeContext:
    """The ambient runtime context (serial/uncached unless configured)."""
    return _ambient


@contextmanager
def use_runtime(**overrides: Any):
    """Temporarily replace fields of the ambient context.

    Accepts any :class:`RuntimeContext` field, e.g.
    ``use_runtime(jobs=4, cache=ResultCache())``.  Nesting composes:
    inner overrides win, everything else is inherited.
    """
    global _ambient
    with _ambient_lock:
        previous = _ambient
        _ambient = _dc_replace(previous, **overrides)
    try:
        yield _ambient
    finally:
        with _ambient_lock:
            _ambient = previous


def run_specs(specs: Sequence[RunSpec], **overrides: Any) -> List[Any]:
    """Run specs under the ambient context (plus keyword overrides)."""
    return run_many(specs, **overrides)


def group_results(
    specs: Sequence[RunSpec],
    results: Sequence[Any],
    key: Callable[[RunSpec], Any] = lambda spec: spec.protocol,
) -> Dict[Any, List[Any]]:
    """Regroup ordered results, by protocol unless told otherwise."""
    grouped: Dict[Any, List[Any]] = {}
    for spec, result in zip(specs, results):
        grouped.setdefault(key(spec), []).append(result)
    return grouped


def run_many(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Any = _INHERIT,
    manifest: Any = _INHERIT,
    progress: Any = _INHERIT,
    timeout_s: Any = _INHERIT,
    retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    max_backoff_s: Optional[float] = None,
    obs: Any = _INHERIT,
    verify: Optional[bool] = None,
    perf_store: Any = _INHERIT,
) -> List[Any]:
    """Execute every spec; return results in spec order.

    Raises :class:`~repro.errors.ExecutionError` if any run ultimately
    failed (all successful results up to that point are cached, so a
    re-invocation resumes where it left off), and
    :class:`~repro.errors.ConfigurationError` if pre-dispatch
    verification rejects a spec (disable with ``verify=False``).
    """
    ctx = current_context()
    jobs = ctx.jobs if jobs is None else jobs
    cache = ctx.cache if cache is _INHERIT else cache
    manifest = ctx.manifest if manifest is _INHERIT else manifest
    progress = ctx.progress if progress is _INHERIT else progress
    timeout_s = ctx.timeout_s if timeout_s is _INHERIT else timeout_s
    retries = ctx.retries if retries is None else retries
    backoff_s = ctx.backoff_s if backoff_s is None else backoff_s
    max_backoff_s = ctx.max_backoff_s if max_backoff_s is None else max_backoff_s
    obs = ctx.obs if obs is _INHERIT else obs
    verify = ctx.verify if verify is None else verify
    perf_store = ctx.perf_store if perf_store is _INHERIT else perf_store
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")

    specs = list(specs)
    if verify:
        _verify_before_dispatch(specs)
    results: List[Any] = [None] * len(specs)
    state = _BatchState(
        specs=specs,
        results=results,
        cache=cache,
        manifest=manifest,
        reporter=auto_reporter(progress),
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        max_backoff_s=max_backoff_s,
        obs=obs,
        perf_store=perf_store,
    )
    if state.reporter is not None:
        state.reporter.start(len(specs))

    pending = state.consume_cache()
    if pending:
        if jobs > 1 and len(pending) > 1:
            pool_ran = _run_pool(state, pending, jobs)
            if not pool_ran:
                _run_serial(state, pending)
        else:
            _run_serial(state, pending)

    if state.reporter is not None:
        state.reporter.finish()
    if state.failures:
        first_index, first_exc = state.failures[0]
        raise ExecutionError(
            f"{len(state.failures)} of {len(specs)} runs failed; first: "
            f"{specs[first_index].label}: {first_exc}"
        ) from first_exc
    return results


def retry_delay_s(
    base_s: float,
    cap_s: float,
    prev_s: float,
    rng: random.Random,
) -> float:
    """One decorrelated-jitter retry delay (uniform in
    ``[base, 3 * prev]``, capped at ``cap_s``).

    A wave of workers killed by the same cause (OOM, a rebooted
    license server) must not retry in lockstep: each delay is drawn
    independently, and feeding the previous delay back in grows the
    spread roughly exponentially while the cap bounds the worst case.
    """
    if base_s <= 0:
        return 0.0
    upper = max(base_s, 3.0 * prev_s)
    return min(cap_s, rng.uniform(base_s, upper))


def _verify_before_dispatch(specs: Sequence[RunSpec]) -> None:
    """Apply the Tier-2 static verifier to a batch before any run.

    Only error-severity findings refuse the batch; warnings (e.g.
    EMPTCPConfig-shaped overrides on a custom builder) are ignored
    here and surfaced by ``repro check config`` instead.
    """
    from repro.check.config import verify_specs

    report = verify_specs(specs)
    if not report.ok:
        raise ConfigurationError(
            "pre-dispatch verification failed:\n"
            + "\n".join(f.format() for f in report.sorted_findings()
                        if f.severity.value == "error")
        )


class _BatchState:
    """Shared bookkeeping for one :func:`run_many` invocation."""

    def __init__(
        self,
        specs: List[RunSpec],
        results: List[Any],
        cache: Optional[ResultCache],
        manifest: Optional[RunManifest],
        reporter: Optional[ProgressReporter],
        timeout_s: Optional[float],
        retries: int,
        backoff_s: float,
        max_backoff_s: float = 30.0,
        obs: Optional[_obs.ObsOptions] = None,
        perf_store: Optional[PerfStore] = None,
    ):
        self.specs = specs
        self.results = results
        self.cache = cache
        self.manifest = manifest
        self.reporter = reporter
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.obs = obs
        self.perf_store = perf_store
        self.failures: List[Tuple[int, BaseException]] = []
        # Retry pacing: per-spec previous delay for decorrelated
        # jitter.  Deliberately unseeded — these delays never touch
        # simulation results, and sharing entropy across processes is
        # exactly what the jitter exists to avoid.
        self._retry_rng = random.Random()
        self._retry_prev: Dict[int, float] = {}

    def next_retry_delay(self, index: int) -> float:
        """The jittered, capped backoff before retrying one spec."""
        prev = self._retry_prev.get(index, self.backoff_s)
        delay = retry_delay_s(
            self.backoff_s, self.max_backoff_s, prev, self._retry_rng
        )
        self._retry_prev[index] = delay
        return delay

    def consume_cache(self) -> List[int]:
        """Fill cached results; return the indices still to execute."""
        pending: List[int] = []
        for i, spec in enumerate(self.specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                self.results[i] = hit
                self.record(spec, "cached", worker="cache")
            else:
                pending.append(i)
        return pending

    def record(
        self,
        spec: RunSpec,
        outcome: str,
        wall_time_s: float = 0.0,
        worker: str = "local",
        attempt: int = 1,
        trace: str = "",
        perf: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self.manifest is not None:
            self.manifest.record(
                spec, outcome, wall_time_s=wall_time_s, worker=worker,
                attempt=attempt, trace=trace, perf=perf,
            )
        if self.reporter is not None:
            self.reporter.update(outcome)

    def succeed(
        self, index: int, result: Any, wall: float, worker: str, attempt: int,
        trace: str = "", perf: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.results[index] = result
        spec = self.specs[index]
        if self.cache is not None:
            self.cache.put(spec, result)
        if perf and self.perf_store is not None:
            try:
                self.perf_store.record(PerfRecord.from_dict(perf))
            except (KeyError, TypeError, ValueError, OSError):
                pass  # telemetry must never fail the run it measured
        self.record(
            spec, "executed", wall_time_s=wall, worker=worker, attempt=attempt,
            trace=trace, perf=perf,
        )

    def fail(
        self, index: int, exc: BaseException, wall: float, worker: str,
        attempt: int,
    ) -> None:
        self.failures.append((index, exc))
        self.record(
            self.specs[index], "failed", wall_time_s=wall, worker=worker,
            attempt=attempt,
        )


def _sigalrm_usable() -> bool:
    """True when a pre-emptive ``SIGALRM`` deadline can be armed here.

    Split out (rather than inlined in :func:`_deadline`) so tests can
    monkeypatch it to exercise the wall-clock fallback on platforms
    that *do* have ``SIGALRM``.
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise ``TimeoutError`` if the body outlives ``seconds``.

    Where ``SIGALRM`` is available and we are on the main thread
    (always true for pool workers), the timeout is pre-emptive: the
    run is interrupted mid-flight.  Everywhere else — Windows, or a
    caller driving the runtime from a secondary thread — the deadline
    degrades to a post-hoc wall-clock check: the run completes, but if
    it overshot the budget its result is discarded and ``TimeoutError``
    is raised so ``--timeout`` is honoured on every platform rather
    than silently becoming a no-op.
    """
    if seconds is None or seconds <= 0:
        yield
        return

    if not _sigalrm_usable():
        start = time.monotonic()
        yield
        elapsed = time.monotonic() - start
        if elapsed > seconds:
            raise TimeoutError(
                f"run exceeded the {seconds}s timeout "
                f"(finished after {elapsed:.2f}s; SIGALRM unavailable, so "
                f"the run could not be interrupted mid-flight)"
            )
        return

    def _expired(_signum, _frame):
        raise TimeoutError(f"run exceeded the {seconds}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _export_session(
    spec: RunSpec, options: _obs.ObsOptions, session: _obs.ObsSession
) -> str:
    """File one run's capture under ``options.dir``; return the trace
    path ("" when only metrics were collected)."""
    out_dir = Path(options.dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = spec.content_hash()
    trace_path = ""
    if session.tracer is not None:
        trace_path = str(out_dir / f"{stem}.trace.jsonl")
        session.tracer.to_jsonl(trace_path)
    if session.metrics is not None:
        metrics_path = out_dir / f"{stem}.metrics.json"
        metrics_path.write_text(
            json.dumps(session.metrics.to_dict(), indent=2, sort_keys=True)
            + "\n"
        )
    if session.profiler is not None:
        spans_path = out_dir / f"{stem}.spans.json"
        spans_path.write_text(
            json.dumps(session.profiler.to_dict(), indent=2, sort_keys=True)
            + "\n"
        )
    return trace_path


def _execute_observed(
    spec: RunSpec, options: Optional[_obs.ObsOptions]
) -> Tuple[Any, str]:
    """Run one spec, inside its own capture session when requested.

    Returns ``(result, trace_path)``; the trace path is "" when
    observability is off.
    """
    if options is None or not options.enabled:
        return spec.execute(), ""
    with _obs.capture(
        trace=options.trace,
        metrics=options.metrics,
        profile=options.profile,
        ring_size=options.ring_size,
    ) as session:
        result = spec.execute()
    return result, _export_session(spec, options, session)


def _worker_run(
    spec_dict: Dict[str, Any],
    timeout_s: Optional[float],
    obs_dict: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], float, str, str, Dict[str, Any]]:
    """Pool-side entry point: rebuild the spec, run it, encode the result.

    Must stay a module-level function so it pickles under every
    multiprocessing start method.
    """
    spec = RunSpec.from_dict(spec_dict)
    entry = get_builder(spec.builder)
    options = (
        _obs.ObsOptions.from_dict(obs_dict) if obs_dict is not None else None
    )
    meter = PerfMeter(spec)
    start = time.perf_counter()
    with _deadline(timeout_s):
        result, trace = _execute_observed(spec, options)
    wall = time.perf_counter() - start
    perf = meter.finish(wall).to_dict()
    return entry.encode(result), wall, f"pid-{os.getpid()}", trace, perf


def _run_serial(state: _BatchState, pending: List[int]) -> None:
    """In-process execution: the ``jobs=1`` path and the pool fallback."""
    for i in pending:
        spec = state.specs[i]
        attempt = 0
        while True:
            attempt += 1
            meter = PerfMeter(spec)
            start = time.perf_counter()
            try:
                with _deadline(state.timeout_s):
                    result, trace = _execute_observed(spec, state.obs)
            except TimeoutError as exc:
                wall = time.perf_counter() - start
                if attempt <= state.retries:
                    state.record(
                        spec, "retried", wall_time_s=wall, attempt=attempt
                    )
                    time.sleep(state.next_retry_delay(i))
                    continue
                state.fail(i, exc, wall, "local", attempt)
                break
            except Exception as exc:
                # Deterministic simulation failure: retrying would only
                # reproduce it, so fail immediately.
                state.fail(i, exc, time.perf_counter() - start, "local", attempt)
                break
            else:
                wall = time.perf_counter() - start
                state.succeed(
                    i, result, wall, "local", attempt,
                    trace=trace, perf=meter.finish(wall).to_dict(),
                )
                break


def _make_pool(jobs: int) -> ProcessPoolExecutor:
    """A pool preferring ``fork`` (cheap, inherits the registry) while
    degrading to the platform default start method."""
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        mp_context = None
    return ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context)


def _run_pool(state: _BatchState, pending: List[int], jobs: int) -> bool:
    """Process-pool execution; returns False if no pool could be made
    (the caller then falls back to serial execution)."""
    try:
        pool = _make_pool(jobs)
    except (NotImplementedError, OSError, PermissionError, ValueError):
        return False

    attempts = {i: 0 for i in pending}
    queue = list(pending)
    obs_dict = (
        state.obs.to_dict()
        if state.obs is not None and state.obs.enabled
        else None
    )
    try:
        while queue:
            futures = {}
            for i in queue:
                attempts[i] += 1
                futures[
                    pool.submit(
                        _worker_run,
                        state.specs[i].to_dict(),
                        state.timeout_s,
                        obs_dict,
                    )
                ] = i
            queue = []
            try:
                for future in as_completed(futures):
                    i = futures[future]
                    spec = state.specs[i]
                    try:
                        encoded, wall, worker, trace, perf = future.result()
                    except BrokenProcessPool:
                        raise  # handled by the outer except: pool is dead
                    except TimeoutError as exc:
                        if attempts[i] <= state.retries:
                            state.record(spec, "retried", attempt=attempts[i])
                            queue.append(i)
                        else:
                            state.fail(i, exc, 0.0, "pool", attempts[i])
                    except Exception as exc:
                        state.fail(i, exc, 0.0, "pool", attempts[i])
                    else:
                        result = get_builder(spec.builder).decode(encoded)
                        state.succeed(
                            i, result, wall, worker, attempts[i], trace=trace,
                            perf=perf,
                        )
            except BrokenProcessPool as exc:
                # A worker died (OOM, hard crash).  Harvest any runs
                # that finished before the pool collapsed, then requeue
                # the rest onto a fresh pool, within the retry budget.
                pool.shutdown(wait=False)
                failed_indices = {j for j, _ in state.failures}
                for future, i in futures.items():
                    if (
                        state.results[i] is not None
                        or i in queue
                        or i in failed_indices
                    ):
                        continue
                    if future.done() and future.exception() is None:
                        encoded, wall, worker, trace, perf = future.result()
                        spec = state.specs[i]
                        result = get_builder(spec.builder).decode(encoded)
                        state.succeed(
                            i, result, wall, worker, attempts[i], trace=trace,
                            perf=perf,
                        )
                    elif attempts[i] <= state.retries:
                        state.record(
                            state.specs[i], "retried", attempt=attempts[i],
                            worker="pool",
                        )
                        queue.append(i)
                    else:
                        state.fail(i, exc, 0.0, "pool", attempts[i])
                if queue:
                    time.sleep(max(state.next_retry_delay(i) for i in queue))
                    pool = _make_pool(jobs)
    finally:
        pool.shutdown(wait=True)
    return True
