"""Content-addressed on-disk result cache.

Every :class:`~repro.runtime.spec.RunSpec` has a stable content hash
(spec payload + code/version salt); one JSON file per hash under the
cache root stores the spec alongside its encoded result, in the spirit
of :mod:`repro.analysis.export` and
:mod:`repro.energy.serialization` — boring, stable, human-greppable
JSON.  Re-running a report therefore skips every run whose spec (and
code version) is unchanged.

Invalidation rules: the hash covers the protocol, the builder name and
kwargs, the seed, any config overrides, and the salt.  Changing any of
those — including bumping the package version or
``RUNTIME_SCHEMA_VERSION`` — misses the cache; stale entries are
removed with :meth:`ResultCache.clear` (CLI: ``emptcp-repro cache
clear``).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro import obs as _obs
from repro.runtime.spec import RunSpec, code_salt, get_builder

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_ROOT = ".repro-cache"


@dataclass(frozen=True)
class CacheStats:
    """What ``emptcp-repro cache stats`` reports."""

    root: str
    entries: int
    total_bytes: int


class ResultCache:
    """A content-addressed store of run results.

    Writes are atomic (temp file + rename), so concurrent runs — or a
    run killed mid-write — can never leave a truncated entry that a
    later read would trust; any unreadable entry is simply a miss.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_ROOT):
        self.root = Path(root)

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    def path_for(self, spec: RunSpec) -> Path:
        """Where the given spec's result lives (whether or not cached)."""
        return self.results_dir / f"{spec.content_hash()}.json"

    def get(self, spec: RunSpec) -> Optional[Any]:
        """The decoded cached result, or None on any kind of miss."""
        prof = _obs.profiler_or_none()
        if prof is not None:
            with prof.span("runtime.cache.get"):
                return self._get_inner(spec)
        return self._get_inner(spec)

    def _get_inner(self, spec: RunSpec) -> Optional[Any]:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("salt") != code_salt():
            return None
        try:
            return get_builder(spec.builder).decode(payload["result"])
        except Exception:
            return None

    def put(self, spec: RunSpec, result: Any) -> Path:
        """Store one result; returns the entry path."""
        prof = _obs.profiler_or_none()
        if prof is not None:
            with prof.span("runtime.cache.put"):
                return self._put_inner(spec, result)
        return self._put_inner(spec, result)

    def _put_inner(self, spec: RunSpec, result: Any) -> Path:
        entry = get_builder(spec.builder)
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "salt": code_salt(),
            "spec": spec.to_dict(),
            "result": entry.encode(result),
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def _entries(self):
        if not self.results_dir.is_dir():
            return []
        return sorted(self.results_dir.glob("*.json"))

    def stats(self) -> CacheStats:
        """Entry count and on-disk footprint."""
        entries = self._entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            root=str(self.root), entries=len(entries), total_bytes=total
        )

    def clear(self) -> int:
        """Delete every cached result; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
