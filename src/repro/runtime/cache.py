"""Content-addressed on-disk result cache over the segment store.

Every :class:`~repro.runtime.spec.RunSpec` has a stable content hash
(spec payload + code/version salt).  Entries live in the batched
:class:`~repro.runtime.store.SegmentStore` under ``<root>/store/`` —
append-only JSONL segments plus an index, so a sweep's worth of
results is a handful of files instead of one blob per run, lookups are
one seek, and ``stats`` is pure ``os.stat`` metadata.

Two generations coexist:

* **segment entries** (current) — one indexed JSON line per result;
* **legacy entries** (pre-segment) — ``<root>/results/<hash>.json``
  blobs written by earlier releases.  A legacy entry is still a hit;
  on first read it is transparently migrated into the segment store
  and the blob removed, so an old cache converts itself as it is used.

Invalidation rules are unchanged: the hash covers the protocol, the
builder name and kwargs, the seed, any config overrides, and the salt.
Changing any of those — including bumping the package version or
``RUNTIME_SCHEMA_VERSION`` — misses the cache; stale entries are
removed with :meth:`ResultCache.clear` (CLI: ``emptcp-repro cache
clear``) or aged out with :meth:`ResultCache.evict`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from repro import obs as _obs
from repro.runtime.spec import RunSpec, code_salt, get_builder
from repro.runtime.store import SegmentStore, StoreTelemetry

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_ROOT = ".repro-cache"


@dataclass(frozen=True)
class CacheStats:
    """What ``emptcp-repro cache stats`` reports.

    Derived entirely from filesystem metadata (``os.stat`` on the
    segments/index plus a directory listing of any legacy blobs) — no
    entry is read or JSON-parsed, so stats on a huge cache stays
    O(entries) in the index, not O(bytes).
    """

    root: str
    entries: int
    total_bytes: int
    #: Current-generation layout details.
    segments: int = 0
    legacy_entries: int = 0


class ResultCache:
    """A content-addressed store of run results.

    Segment and index writes are append-plus-flush, and the index is
    rewritten atomically on eviction, so concurrent runs — or a run
    killed mid-write — can never leave a truncated entry that a later
    read would trust; any unreadable entry is simply a miss.
    """

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_CACHE_ROOT,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        migrate_legacy: bool = True,
    ):
        self.root = Path(root)
        self.store = SegmentStore(self.root / "store")
        self.max_bytes = max_bytes
        self.max_age_s = max_age_s
        self.migrate_legacy = migrate_legacy

    @property
    def telemetry(self) -> StoreTelemetry:
        """Hit/miss/append/eviction counters (this instance's lifetime)."""
        return self.store.telemetry

    @property
    def results_dir(self) -> Path:
        """Where legacy per-run JSON blobs live(d)."""
        return self.root / "results"

    def path_for(self, spec: RunSpec) -> Path:
        """Where the given spec's *legacy* entry lives (whether or not
        cached) — current entries live inside segments and have no
        per-spec path."""
        return self.results_dir / f"{spec.content_hash()}.json"

    def get(self, spec: RunSpec) -> Optional[Any]:
        """The decoded cached result, or None on any kind of miss."""
        prof = _obs.profiler_or_none()
        if prof is not None:
            with prof.span("runtime.cache.get"):
                return self._get_inner(spec)
        return self._get_inner(spec)

    def _get_inner(self, spec: RunSpec) -> Optional[Any]:
        spec_hash = spec.content_hash()
        payload = self.store.get(spec_hash)
        if payload is None:
            payload = self._get_legacy(spec, spec_hash)
        if payload is None:
            return None
        if payload.get("salt") != code_salt():
            return None
        try:
            return get_builder(spec.builder).decode(payload["result"])
        except Exception:
            return None

    def _get_legacy(
        self, spec: RunSpec, spec_hash: str
    ) -> Optional[Any]:
        """Read a pre-segment blob; migrate it into the store on hit."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if self.migrate_legacy and payload.get("salt") == code_salt():
            try:
                self.store.put(spec_hash, payload)
                path.unlink()
                self.store.telemetry.migrated += 1
            except OSError:
                pass  # migration is best-effort; the blob stays a hit
        return payload

    def put(self, spec: RunSpec, result: Any) -> Path:
        """Store one result; returns the segment it was appended to."""
        prof = _obs.profiler_or_none()
        if prof is not None:
            with prof.span("runtime.cache.put"):
                return self._put_inner(spec, result)
        return self._put_inner(spec, result)

    def _put_inner(self, spec: RunSpec, result: Any) -> Path:
        entry = get_builder(spec.builder)
        payload = {
            "salt": code_salt(),
            "spec": spec.to_dict(),
            "result": entry.encode(result),
        }
        self.store.put(spec.content_hash(), payload)
        if self.max_bytes is not None or self.max_age_s is not None:
            self.store.evict(self.max_bytes, self.max_age_s)
        return self.store.root / self.store._segment_name

    def _legacy_entries(self):
        if not self.results_dir.is_dir():
            return []
        return sorted(self.results_dir.glob("*.json"))

    def stats(self) -> CacheStats:
        """Entry count and on-disk footprint, from metadata only."""
        legacy = self._legacy_entries()
        legacy_bytes = 0
        for path in legacy:
            try:
                legacy_bytes += path.stat().st_size
            except OSError:
                pass
        segments = self.store.segment_paths()
        return CacheStats(
            root=str(self.root),
            entries=self.store.entry_count() + len(legacy),
            total_bytes=self.store.total_bytes() + legacy_bytes,
            segments=len(segments),
            legacy_entries=len(legacy),
        )

    def evict(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> int:
        """Drop oldest segments past the size/age budget (instance
        defaults unless overridden); returns entries evicted."""
        return self.store.evict(
            self.max_bytes if max_bytes is None else max_bytes,
            self.max_age_s if max_age_s is None else max_age_s,
        )

    def clear(self) -> int:
        """Delete every cached result (both generations); returns how
        many entries were removed."""
        removed = self.store.clear()
        for path in self._legacy_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
