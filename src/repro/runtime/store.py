"""Batched, append-only segment result store.

The original :class:`~repro.runtime.cache.ResultCache` kept one JSON
blob per run.  At sweep scale that is tens of thousands of tiny files:
``stats`` walks and parses all of them, eviction is per-file unlink
churn, and every lookup pays a filesystem round trip.  This module
replaces the blobs with *segments*:

* ``seg-<stamp>-<pid>[-n].jsonl`` — one append-only file per store
  instance lifetime (per batch, effectively); each appended entry is a
  single JSON line;
* ``index.jsonl`` — an append-only index mapping spec hash to
  ``(segment, byte offset, byte length)`` so a lookup is one ``seek``
  into one long-lived file.

Eviction is segment-granular: :meth:`SegmentStore.evict` drops whole
oldest segments (by mtime) until the size/age budget holds, then
rewrites the index to match — O(segments), not O(entries).  ``stats``
is ``os.stat`` over the handful of segment files plus a newline count
of the index: O(metadata).

Telemetry (hits / misses / appends / evictions) accumulates on
:attr:`SegmentStore.telemetry` and is flushed into the PR-5
:class:`~repro.runtime.perf.PerfStore` by the scheduler at batch end.

Wall-clock reads go through the journaled :mod:`repro.runtime.clock`
seam (segment stamps, age-based eviction); the module is covered by
the REP101/REP202 determinism checks.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.runtime import clock

#: Segment file-name prefix (``seg-<epoch-ms>-<pid>[-n].jsonl``).
SEGMENT_PREFIX = "seg-"

#: The append-only index file name under the store root.
INDEX_FILE = "index.jsonl"


@dataclass
class StoreTelemetry:
    """Lifetime counters of one :class:`SegmentStore` instance."""

    hits: int = 0
    misses: int = 0
    appends: int = 0
    evictions: int = 0
    migrated: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "appends": self.appends,
            "evictions": self.evictions,
            "migrated": self.migrated,
        }


@dataclass(frozen=True)
class _IndexEntry:
    segment: str
    offset: int
    length: int


class SegmentStore:
    """Hash-addressed payload store over append-only segments."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.telemetry = StoreTelemetry()
        self._index: Dict[str, _IndexEntry] = {}
        #: Bytes of index.jsonl already folded into ``_index``; when the
        #: file grows past this (another process appended), only the
        #: tail is re-read.
        self._index_consumed = 0
        self._segment_fh: Optional[Any] = None
        self._segment_name = ""
        self._index_fh: Optional[Any] = None

    # -- paths ------------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILE

    def segment_paths(self) -> List[Path]:
        """Existing segment files, oldest first (by mtime, then name
        for stability)."""
        if not self.root.is_dir():
            return []
        paths = [
            p
            for p in self.root.iterdir()
            if p.name.startswith(SEGMENT_PREFIX) and p.suffix == ".jsonl"
        ]

        def age_key(path: Path) -> Tuple[float, str]:
            try:
                return (path.stat().st_mtime, path.name)
            except OSError:
                return (0.0, path.name)

        return sorted(paths, key=age_key)

    def _open_segment(self) -> Any:
        if self._segment_fh is None:
            self.root.mkdir(parents=True, exist_ok=True)
            stamp = int(clock.now() * 1000)
            base = f"{SEGMENT_PREFIX}{stamp}-{os.getpid()}"
            name, n = f"{base}.jsonl", 0
            while (self.root / name).exists():
                n += 1
                name = f"{base}-{n}.jsonl"
            self._segment_name = name
            self._segment_fh = open(self.root / name, "a")
        return self._segment_fh

    # -- index ------------------------------------------------------

    def _refresh_index(self) -> None:
        """Fold index lines beyond what we've already consumed."""
        try:
            size = self.index_path.stat().st_size
        except OSError:
            return
        if size <= self._index_consumed:
            return
        with open(self.index_path, "r") as fh:
            fh.seek(self._index_consumed)
            tail = fh.read()
        self._index_consumed += len(tail.encode("utf-8"))
        for line in tail.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn tail from a crash mid-append
            try:
                self._index[str(doc["hash"])] = _IndexEntry(
                    segment=str(doc["seg"]),
                    offset=int(doc["off"]),
                    length=int(doc["len"]),
                )
            except (KeyError, TypeError, ValueError):
                continue

    def _append_index(self, spec_hash: str, entry: _IndexEntry) -> None:
        if self._index_fh is None:
            # Fold any pre-existing lines first so _index_consumed sits
            # at end-of-file; otherwise the offset accounting below
            # desyncs and later refreshes seek into the middle of a
            # line, silently dropping older entries.
            self._refresh_index()
            self.root.mkdir(parents=True, exist_ok=True)
            self._index_fh = open(self.index_path, "a")
        line = json.dumps(
            {
                "hash": spec_hash,
                "seg": entry.segment,
                "off": entry.offset,
                "len": entry.length,
                "t": clock.now(),
            },
            sort_keys=True,
        )
        self._index_fh.write(line + "\n")
        self._index_fh.flush()
        self._index_consumed += len(line.encode("utf-8")) + 1
        self._index[spec_hash] = entry

    # -- read/write -------------------------------------------------

    def get(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        """The payload stored for ``spec_hash``, or None.  A missing
        segment or a corrupt line is a miss, never an error."""
        self._refresh_index()
        entry = self._index.get(spec_hash)
        if entry is None:
            self.telemetry.misses += 1
            return None
        try:
            with open(self.root / entry.segment, "rb") as fh:
                fh.seek(entry.offset)
                raw = fh.read(entry.length)
            payload = json.loads(raw.decode("utf-8"))
        except (OSError, ValueError):
            self.telemetry.misses += 1
            return None
        if not isinstance(payload, dict):
            self.telemetry.misses += 1
            return None
        self.telemetry.hits += 1
        return payload

    def put(self, spec_hash: str, payload: Dict[str, Any]) -> None:
        """Append ``payload`` to the current segment and index it."""
        fh = self._open_segment()
        raw = json.dumps(payload, sort_keys=True)
        offset = fh.tell()
        fh.write(raw + "\n")
        fh.flush()
        self._append_index(
            spec_hash,
            _IndexEntry(
                segment=self._segment_name,
                offset=offset,
                length=len(raw.encode("utf-8")),
            ),
        )
        self.telemetry.appends += 1

    def __contains__(self, spec_hash: str) -> bool:
        self._refresh_index()
        return spec_hash in self._index

    # -- metadata / maintenance -------------------------------------

    def entry_count(self) -> int:
        """Number of indexed entries — a newline count of the index
        (no JSON parsing), minus later-shadowed duplicates is *not*
        attempted: rewrites of the same hash are rare and the count is
        a capacity signal, not an exact inventory."""
        try:
            with open(self.index_path, "rb") as fh:
                return sum(
                    chunk.count(b"\n")
                    for chunk in iter(lambda: fh.read(1 << 16), b"")
                )
        except OSError:
            return 0

    def total_bytes(self) -> int:
        """``os.stat`` sum over segments + index (no content reads)."""
        total = 0
        for path in self.segment_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        try:
            total += self.index_path.stat().st_size
        except OSError:
            pass
        return total

    def evict(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> int:
        """Drop whole oldest segments until the store fits ``max_bytes``
        and nothing is older than ``max_age_s``; rewrite the index to
        match.  The currently-open segment is never evicted.  Returns
        the number of index entries dropped."""
        segments = self.segment_paths()
        if not segments:
            return 0
        now = clock.now()
        doomed: List[Path] = []
        sizes = {}
        for path in segments:
            try:
                stat = path.stat()
            except OSError:
                continue
            sizes[path] = (stat.st_size, stat.st_mtime)
        total = sum(size for size, _ in sizes.values())
        for path in segments:  # oldest first
            if path.name == self._segment_name:
                continue
            size, mtime = sizes.get(path, (0, now))
            too_old = max_age_s is not None and now - mtime > max_age_s
            too_big = max_bytes is not None and total > max_bytes
            if too_old or too_big:
                doomed.append(path)
                total -= size
        if not doomed:
            return 0
        doomed_names = {path.name for path in doomed}
        for path in doomed:
            try:
                path.unlink()
            except OSError:
                doomed_names.discard(path.name)
        return self._compact_index(drop=doomed_names)

    def _compact_index(self, drop: Any = ()) -> int:
        """Atomically rewrite the index, dropping entries whose segment
        is in ``drop`` or missing on disk.  Returns entries dropped."""
        self._refresh_index()
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None
        drop = set(drop)
        survivors: Dict[str, _IndexEntry] = {}
        dropped = 0
        for spec_hash, entry in self._index.items():
            if entry.segment in drop or not (
                self.root / entry.segment
            ).exists():
                dropped += 1
                self.telemetry.evictions += 1
            else:
                survivors[spec_hash] = entry
        tmp = self.index_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w") as fh:
            for spec_hash, entry in survivors.items():
                fh.write(
                    json.dumps(
                        {
                            "hash": spec_hash,
                            "seg": entry.segment,
                            "off": entry.offset,
                            "len": entry.length,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        os.replace(tmp, self.index_path)
        self._index = survivors
        self._index_consumed = self.index_path.stat().st_size
        return dropped

    def clear(self) -> int:
        """Remove every segment and the index; returns entries dropped."""
        self._refresh_index()
        removed = len(self._index)
        self.close()
        for path in self.segment_paths():
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self.index_path.unlink()
        except OSError:
            pass
        self._index = {}
        self._index_consumed = 0
        return removed

    def close(self) -> None:
        if self._segment_fh is not None:
            self._segment_fh.close()
            self._segment_fh = None
            self._segment_name = ""
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None


__all__ = [
    "INDEX_FILE",
    "SEGMENT_PREFIX",
    "SegmentStore",
    "StoreTelemetry",
]
