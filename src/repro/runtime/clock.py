"""The runtime's journaled wall-clock seam.

The queue, scheduler, and store (``repro.runtime.queue`` /
``scheduler`` / ``store``) are covered by the determinism checks
(REP101/REP202): they must not read ``time.*`` directly.  Every
wall-clock observation they make goes through this module instead, for
two reasons:

* **journal replay** — the job queue journals each submit/start/done
  event with the timestamp the clock handed out, so replaying a
  journal under a :class:`ManualClock` (or a :class:`ReplayClock` fed
  the journalled instants) reproduces the exact recovery decisions a
  crashed run would have made; and
* **checkability** — with exactly one sanctioned entry point, the
  static tiers can verify the service layer never grows a second,
  unjournalled clock dependency.

The ambient clock defaults to :class:`SystemClock` and is swapped with
:func:`use_clock` (tests, replay).  Module-level :func:`now` /
:func:`monotonic` / :func:`perf` / :func:`sleep` read the ambient
clock, so production code never names a clock object.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, List, Sequence


class Clock:
    """Wall-clock access point; the system implementation."""

    def now(self) -> float:
        """Seconds since the epoch (journal timestamps)."""
        return time.time()

    def monotonic(self) -> float:
        """Monotonic seconds (age/eviction arithmetic)."""
        return time.monotonic()

    def perf(self) -> float:
        """High-resolution seconds (wall-time measurement)."""
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (retry backoff)."""
        if seconds > 0:
            time.sleep(seconds)


#: Alias kept for symmetry with :class:`ManualClock`.
SystemClock = Clock


class ManualClock(Clock):
    """A clock that only moves when told to — tests and replay."""

    def __init__(self, start_s: float = 0.0):
        self._t = start_s

    def now(self) -> float:
        return self._t

    def monotonic(self) -> float:
        return self._t

    def perf(self) -> float:
        return self._t

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        self._t += max(0.0, seconds)


class ReplayClock(ManualClock):
    """Replays a journalled sequence of instants.

    Each :meth:`now` pops the next recorded timestamp (falling back to
    the last one when the journal is exhausted), so recovery code that
    asks "what time is it?" sees exactly what the crashed run saw.
    """

    def __init__(self, instants: Sequence[float]):
        super().__init__(instants[0] if instants else 0.0)
        self._pending: List[float] = list(instants)

    def now(self) -> float:
        if self._pending:
            self._t = self._pending.pop(0)
        return self._t


_local = threading.local()
_DEFAULT = SystemClock()


def get_clock() -> Clock:
    """The ambient clock (a :class:`SystemClock` unless overridden)."""
    return getattr(_local, "clock", _DEFAULT)


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Temporarily replace the ambient clock on this thread."""
    previous = getattr(_local, "clock", None)
    _local.clock = clock
    try:
        yield clock
    finally:
        if previous is None:
            del _local.clock
        else:
            _local.clock = previous


def now() -> float:
    """Epoch seconds from the ambient clock."""
    return get_clock().now()


def monotonic() -> float:
    """Monotonic seconds from the ambient clock."""
    return get_clock().monotonic()


def perf() -> float:
    """High-resolution seconds from the ambient clock."""
    return get_clock().perf()


def sleep(seconds: float) -> None:
    """Sleep on the ambient clock (a no-op under :class:`ManualClock`)."""
    get_clock().sleep(seconds)


__all__ = [
    "Clock",
    "ManualClock",
    "ReplayClock",
    "SystemClock",
    "get_clock",
    "monotonic",
    "now",
    "perf",
    "sleep",
    "use_clock",
]
