"""The asyncio scheduler: warm worker pools fed from the job queue.

This module is the execution half of the runtime split (the
:mod:`~repro.runtime.queue` holds *what* to run; the scheduler decides
*where and when*).  The moving parts:

* **strategy objects** — :class:`RetryPolicy` (bounded retries with
  decorrelated-jitter backoff) and :class:`TimeoutPolicy` (pre-emptive
  ``SIGALRM`` deadline with a wall-clock fallback) carry the knobs that
  used to be loose parameters threaded through ``executor.py``;
* **worker pools** — :class:`ProcessWorkerPool` wraps a warm
  ``ProcessPoolExecutor`` (fork-preferring, restartable after a worker
  crash); :class:`InlineWorkerPool` executes in-process and is both the
  ``jobs=1`` path and the graceful fallback when no pool can be
  created;
* **work stealing** — ready jobs are dealt round-robin across the
  pools' local deques; an idle worker drains its own deque first, then
  the central queue (DAG-released work), then steals from the tail of
  the longest other deque, so one slow shard cannot strand work;
* **the scheduler** — :meth:`Scheduler.run_batch` drives one queue to
  completion synchronously (what the :func:`~repro.runtime.executor.run_many`
  facade calls); :meth:`Scheduler.serve` runs forever on the service's
  event loop with pools kept warm across batches.

Warm pools are safe only where workers inherit every builder the specs
name: the pools fork from the submitting process, so a *scratch*
builder registered after the pool forked would be missing in the
workers.  ``run_batch`` therefore builds pools per call (exactly the
old behaviour), while the long-lived service — whose specs come in by
name over HTTP and resolve against the default builders — keeps them
warm.

Determinism: the module is covered by REP101/REP202; every wall-clock
read goes through the journaled :mod:`repro.runtime.clock` seam.  The
retry RNG is deliberately unseeded — the jitter exists to decorrelate,
and never touches simulation results.

Observability: when a :class:`~repro.obs.dist.SpanRecorder` is
attached (``scheduler.recorder``), every job emits lifecycle spans —
``queue.wait`` (submit→pop), one ``job.exec`` per attempt (annotated
with pool/worker/status), and a terminal ``job`` span — all under the
batch's deterministic trace id, with the per-run obs exports stamped
with the executing attempt's ``(trace_id, span_id)``.  A
:class:`~repro.obs.metrics.MetricsRegistry` on the scheduler counts
retries/steals/timeouts/cache hits for the service's ``/v1/metrics``
plane, and on terminal failure the recorder's flight ring is dumped
into ``flight_dir``.  Both the asyncio drain and the ``jobs<=1``
inline fast path go through the same helpers, so the two paths emit
identical spans.
"""

from __future__ import annotations

import asyncio
import collections
import json
import multiprocessing
import os
import random
import signal
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs as _obs
from repro.obs import dist as _dist
from repro.obs.metrics import MetricsRegistry
from repro.runtime import clock
from repro.runtime.cache import ResultCache
from repro.runtime.manifest import RunManifest
from repro.runtime.perf import PerfMeter, PerfRecord, PerfStore
from repro.runtime.progress import ProgressReporter
from repro.runtime.queue import PENDING, Job, JobQueue
from repro.runtime.spec import RunSpec, get_builder


def retry_delay_s(
    base_s: float,
    cap_s: float,
    prev_s: float,
    rng: random.Random,
) -> float:
    """One decorrelated-jitter retry delay (uniform in
    ``[base, 3 * prev]``, capped at ``cap_s``).

    A wave of workers killed by the same cause (OOM, a rebooted
    license server) must not retry in lockstep: each delay is drawn
    independently, and feeding the previous delay back in grows the
    spread roughly exponentially while the cap bounds the worst case.
    """
    if base_s <= 0:
        return 0.0
    upper = max(base_s, 3.0 * prev_s)
    return min(cap_s, rng.uniform(base_s, upper))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with decorrelated-jitter backoff."""

    #: Extra attempts after a crash or timeout (not after a
    #: deterministic simulation failure, which would just fail again).
    retries: int = 2
    #: Base backoff between attempts, seconds.
    backoff_s: float = 0.5
    #: Hard ceiling on any single retry delay, seconds.
    max_backoff_s: float = 30.0

    def should_retry(self, attempt: int) -> bool:
        return attempt <= self.retries

    def delay_s(self, prev_s: float, rng: random.Random) -> float:
        return retry_delay_s(self.backoff_s, self.max_backoff_s, prev_s, rng)


def _sigalrm_usable() -> bool:
    """True when a pre-emptive ``SIGALRM`` deadline can be armed here.

    Split out (rather than inlined in :meth:`TimeoutPolicy.deadline`)
    so tests can monkeypatch it to exercise the wall-clock fallback on
    platforms that *do* have ``SIGALRM``.
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-run wall-clock budget (None/<=0 = unlimited)."""

    timeout_s: Optional[float] = None

    @contextmanager
    def deadline(self):
        """Raise ``TimeoutError`` if the body outlives the budget.

        Where ``SIGALRM`` is available and we are on the main thread
        (always true for pool workers), the timeout is pre-emptive:
        the run is interrupted mid-flight.  Everywhere else — Windows,
        or a caller driving the runtime from a secondary thread — the
        deadline degrades to a post-hoc wall-clock check: the run
        completes, but if it overshot the budget its result is
        discarded and ``TimeoutError`` is raised so ``--timeout`` is
        honoured on every platform rather than silently becoming a
        no-op.
        """
        seconds = self.timeout_s
        if seconds is None or seconds <= 0:
            yield
            return

        if not _sigalrm_usable():
            start = clock.monotonic()
            yield
            elapsed = clock.monotonic() - start
            if elapsed > seconds:
                raise TimeoutError(
                    f"run exceeded the {seconds}s timeout "
                    f"(finished after {elapsed:.2f}s; SIGALRM unavailable, "
                    f"so the run could not be interrupted mid-flight)"
                )
            return

        def _expired(_signum, _frame):
            raise TimeoutError(f"run exceeded the {seconds}s timeout")

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, float(seconds))
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def _ctx_stamp(
    ctx_dict: Optional[Dict[str, Any]]
) -> Optional[Dict[str, str]]:
    """The ``{trace_id, span_id}`` stamp for run exports, from a
    wire-form :class:`~repro.obs.dist.TraceContext` dict (or None)."""
    if not ctx_dict:
        return None
    trace_id = str(ctx_dict.get("trace_id", ""))
    span_id = str(ctx_dict.get("span_id", ""))
    if not trace_id:
        return None
    return {"trace_id": trace_id, "span_id": span_id}


def _export_session(
    spec: RunSpec,
    options: _obs.ObsOptions,
    session: _obs.ObsSession,
    stamp: Optional[Dict[str, str]] = None,
) -> str:
    """File one run's capture under ``options.dir``; return the trace
    path ("" when only metrics were collected).  ``stamp`` carries the
    distributed-trace identity merged into every export."""
    out_dir = Path(options.dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = spec.content_hash()
    trace_path = ""
    if session.tracer is not None:
        trace_path = str(out_dir / f"{stem}.trace.jsonl")
        session.tracer.to_jsonl(trace_path, extra=stamp)
    if session.metrics is not None:
        metrics_doc = session.metrics.to_dict()
        if stamp:
            metrics_doc.update(stamp)
        metrics_path = out_dir / f"{stem}.metrics.json"
        metrics_path.write_text(
            json.dumps(metrics_doc, indent=2, sort_keys=True) + "\n"
        )
    if session.profiler is not None:
        spans_doc = session.profiler.to_dict()
        if stamp:
            spans_doc.update(stamp)
        spans_path = out_dir / f"{stem}.spans.json"
        spans_path.write_text(
            json.dumps(spans_doc, indent=2, sort_keys=True) + "\n"
        )
    return trace_path


def _execute_observed(
    spec: RunSpec,
    options: Optional[_obs.ObsOptions],
    stamp: Optional[Dict[str, str]] = None,
) -> Tuple[Any, str]:
    """Run one spec, inside its own capture session when requested.

    Returns ``(result, trace_path)``; the trace path is "" when
    observability is off.
    """
    if options is None or not options.enabled:
        return spec.execute(), ""
    with _obs.capture(
        trace=options.trace,
        metrics=options.metrics,
        profile=options.profile,
        ring_size=options.ring_size,
    ) as session:
        result = spec.execute()
    return result, _export_session(spec, options, session, stamp=stamp)


def _worker_run(
    spec_dict: Dict[str, Any],
    timeout_s: Optional[float],
    obs_dict: Optional[Dict[str, Any]] = None,
    ctx_dict: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], float, str, str, Dict[str, Any]]:
    """Pool-side entry point: rebuild the spec, run it, encode the result.

    Must stay a module-level function so it pickles under every
    multiprocessing start method.  ``ctx_dict`` is the execution
    attempt's trace context; its stamp lands on the run's exports so
    they correlate back to the scheduler's lifecycle spans.
    """
    spec = RunSpec.from_dict(spec_dict)
    entry = get_builder(spec.builder)
    options = (
        _obs.ObsOptions.from_dict(obs_dict) if obs_dict is not None else None
    )
    meter = PerfMeter(spec)
    start = clock.perf()
    with TimeoutPolicy(timeout_s).deadline():
        result, trace = _execute_observed(
            spec, options, stamp=_ctx_stamp(ctx_dict)
        )
    wall = clock.perf() - start
    perf = meter.finish(wall).to_dict()
    return entry.encode(result), wall, f"pid-{os.getpid()}", trace, perf


def _make_pool(jobs: int) -> ProcessPoolExecutor:
    """A pool preferring ``fork`` (cheap, inherits the registry) while
    degrading to the platform default start method."""
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        mp_context = None
    return ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context)


#: Exceptions meaning "no process pool can exist here" — the scheduler
#: degrades to in-process execution rather than failing the batch.
POOL_UNAVAILABLE = (NotImplementedError, OSError, PermissionError, ValueError)

#: Smoothing weight of the events/sec EWMA exposed on ``/v1/metrics``
#: (weight of the newest finished run).
EWMA_ALPHA = 0.3


class InlineWorkerPool:
    """In-process execution: the ``jobs=1`` path and the pool fallback.

    With ``offload=True`` (the service) the run is pushed onto a
    helper thread so the scheduler's event loop stays responsive; the
    timeout then uses the wall-clock fallback since ``SIGALRM`` cannot
    be armed off the main thread.
    """

    name = "local"
    capacity = 1

    def __init__(self, offload: bool = False):
        self._offload = offload

    async def execute(
        self,
        spec: RunSpec,
        timeout: TimeoutPolicy,
        options: Optional[_obs.ObsOptions],
        ctx: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Any, float, str, str, Dict[str, Any]]:
        if self._offload:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, self._run, spec, timeout, options, ctx
            )
        return self._run(spec, timeout, options, ctx)

    @staticmethod
    def _run(
        spec: RunSpec,
        timeout: TimeoutPolicy,
        options: Optional[_obs.ObsOptions],
        ctx: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Any, float, str, str, Dict[str, Any]]:
        meter = PerfMeter(spec)
        start = clock.perf()
        with timeout.deadline():
            result, trace = _execute_observed(
                spec, options, stamp=_ctx_stamp(ctx)
            )
        wall = clock.perf() - start
        return result, wall, "local", trace, meter.finish(wall).to_dict()

    def restart(self, generation: int) -> None:  # pragma: no cover
        pass  # nothing to restart in-process

    @property
    def generation(self) -> int:
        return 0

    def close(self) -> None:
        pass


class ProcessWorkerPool:
    """A warm ``ProcessPoolExecutor`` shard.

    ``restart`` is generation-guarded: when a worker crash breaks the
    pool, every in-flight ``execute`` observes ``BrokenProcessPool``
    and asks for a restart, but only the first request (per
    generation) actually rebuilds the pool.
    """

    def __init__(self, workers: int, name: str = "pool-0"):
        self.name = name
        self.capacity = workers
        self._workers = workers
        self._pool: Optional[ProcessPoolExecutor] = _make_pool(workers)
        self._generation = 0
        self._lock = threading.Lock()

    @property
    def generation(self) -> int:
        return self._generation

    async def execute(
        self,
        spec: RunSpec,
        timeout: TimeoutPolicy,
        options: Optional[_obs.ObsOptions],
        ctx: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Any, float, str, str, Dict[str, Any]]:
        pool = self._pool
        if pool is None:
            raise BrokenProcessPool(f"{self.name} could not be rebuilt")
        obs_dict = (
            options.to_dict()
            if options is not None and options.enabled
            else None
        )
        loop = asyncio.get_running_loop()
        encoded, wall, worker, trace, perf = await loop.run_in_executor(
            pool, _worker_run, spec.to_dict(), timeout.timeout_s, obs_dict,
            ctx,
        )
        result = get_builder(spec.builder).decode(encoded)
        return result, wall, worker, trace, perf

    def restart(self, generation: int) -> None:
        """Rebuild the pool after a crash (no-op if another caller with
        the same generation already did)."""
        with self._lock:
            if generation != self._generation:
                return
            self._generation += 1
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            try:
                self._pool = _make_pool(self._workers)
            except POOL_UNAVAILABLE:
                self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def build_pools(
    jobs: int, pending: int, offload_inline: bool = False
) -> List[Any]:
    """Shard ``jobs`` worker slots into pools sized to the work.

    ``jobs <= 1`` (or a single pending run) stays in-process; four or
    more slots are split into two process-pool shards so the scheduler
    has somewhere to steal between; pool creation failure degrades to
    in-process execution.
    """
    if jobs <= 1 or pending <= 1:
        return [InlineWorkerPool(offload=offload_inline)]
    slots = min(jobs, max(pending, 2))
    shards = 2 if slots >= 4 else 1
    per = [slots // shards + (1 if k < slots % shards else 0)
           for k in range(shards)]
    pools: List[Any] = []
    try:
        for k, workers in enumerate(per):
            pools.append(ProcessWorkerPool(workers, name=f"pool-{k}"))
    except POOL_UNAVAILABLE:
        for pool in pools:
            pool.close()
        return [InlineWorkerPool(offload=offload_inline)]
    return pools


class BatchSink:
    """Resolves job outcomes back onto one batch's spec indices.

    Several indices of a batch may share one queue job (spec-hash
    dedup): the first index records the job's own outcome
    ("executed"/"cached"), every further index records "deduped", and
    all of them receive the same result object.
    """

    def __init__(
        self,
        specs: Sequence[RunSpec],
        manifest: Optional[RunManifest] = None,
        reporter: Optional[ProgressReporter] = None,
    ):
        self.specs = list(specs)
        self.manifest = manifest
        self.reporter = reporter
        self.results: List[Any] = [None] * len(self.specs)
        self.failures: List[Tuple[int, BaseException]] = []
        self._indices: Dict[str, List[int]] = {}

    def register(self, index: int, job: Job) -> None:
        self._indices.setdefault(job.spec_hash, []).append(index)

    def start(self) -> None:
        if self.reporter is not None:
            self.reporter.start(len(self.specs))

    def finish(self) -> None:
        if self.reporter is not None:
            self.reporter.finish()

    def _record(
        self,
        spec: RunSpec,
        outcome: str,
        wall_time_s: float = 0.0,
        worker: str = "local",
        attempt: int = 1,
        trace: str = "",
        perf: Optional[Dict[str, Any]] = None,
        trace_id: str = "",
        span_id: str = "",
    ) -> None:
        if self.manifest is not None:
            self.manifest.record(
                spec, outcome, wall_time_s=wall_time_s, worker=worker,
                attempt=attempt, trace=trace, perf=perf,
                trace_id=trace_id, span_id=span_id,
            )
        if self.reporter is not None:
            self.reporter.update(outcome)

    @staticmethod
    def _job_stamp(job: Job) -> Tuple[str, str]:
        """The job span's ``(trace_id, span_id)`` for manifest lines
        ("" pair when tracing is off)."""
        ctx = job.ctx
        trace_id = getattr(ctx, "trace_id", "") if ctx is not None else ""
        span_id = getattr(ctx, "span_id", "") if ctx is not None else ""
        return str(trace_id), str(span_id)

    def on_retried(self, job: Job, wall_s: float = 0.0) -> None:
        trace_id, span_id = self._job_stamp(job)
        self._record(
            job.spec, "retried", wall_time_s=wall_s,
            worker=job.worker or "local", attempt=job.attempts,
            trace_id=trace_id, span_id=span_id,
        )

    def on_terminal(self, job: Job) -> None:
        indices = self._indices.get(job.spec_hash, [])
        trace_id, span_id = self._job_stamp(job)
        if job.state == "done":
            for order, index in enumerate(indices):
                self.results[index] = job.result
                if order == 0:
                    self._record(
                        self.specs[index], job.outcome,
                        wall_time_s=job.wall_s, worker=job.worker or "local",
                        attempt=max(1, job.attempts), trace=job.trace,
                        perf=job.perf, trace_id=trace_id, span_id=span_id,
                    )
                else:
                    self._record(
                        self.specs[index], "deduped", worker="dedup",
                        trace_id=trace_id, span_id=span_id,
                    )
        else:
            error = job.error if job.error is not None else RuntimeError(
                f"{job.spec.label} failed"
            )
            for index in indices:
                self.failures.append((index, error))
                self._record(
                    self.specs[index], "failed", wall_time_s=job.wall_s,
                    worker=job.worker or "local",
                    attempt=max(1, job.attempts),
                    trace_id=trace_id, span_id=span_id,
                )


class Scheduler:
    """Drains a :class:`~repro.runtime.queue.JobQueue` through worker
    pools; owns the result cache and perf telemetry on that path."""

    def __init__(
        self,
        jobs: int = 1,
        retry: RetryPolicy = RetryPolicy(),
        timeout: TimeoutPolicy = TimeoutPolicy(),
        obs: Optional[_obs.ObsOptions] = None,
        cache: Optional[ResultCache] = None,
        perf_store: Optional[PerfStore] = None,
        offload_inline: bool = False,
    ):
        self.jobs = jobs
        self.retry = retry
        self.timeout = timeout
        self.obs = obs
        self.cache = cache
        self.perf_store = perf_store
        self.offload_inline = offload_inline
        #: Retry pacing entropy.  Deliberately unseeded — these delays
        #: never touch simulation results, and sharing entropy across
        #: processes is exactly what the jitter exists to avoid.
        self._retry_rng = random.Random()  # repro: noqa[REP102]
        #: Service mode: workers re-check the cache on pop, because an
        #: earlier batch may have produced the result since submission.
        #: Batch mode resolves hits upfront instead (so a fully-cached
        #: batch never forks a pool) and leaves this off.
        self.worker_cache_check = False
        self._pools: Optional[List[Any]] = None
        self._kick: Optional[asyncio.Event] = None
        self._stopping = False
        #: Set by :meth:`serve`; worker threads use it to wake the loop.
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.on_retry: Optional[Callable[[Job, float], None]] = None
        #: Lifecycle-span sink (None = tracing off).  The executor and
        #: the service attach one; both drain paths emit through it.
        self.recorder: Optional[_dist.SpanRecorder] = None
        #: Where the flight ring is dumped on terminal failure/timeout
        #: (the manifest directory, typically).
        self.flight_dir: Optional[Path] = None
        #: Live counters for the service metrics plane.  Pre-registered
        #: so every scrape sees the full series set from the start.
        self.metrics = MetricsRegistry()
        for _name in (
            "scheduler.retries",
            "scheduler.steals",
            "scheduler.timeouts",
            "scheduler.crashes",
            "scheduler.cache_hits",
            "scheduler.jobs_done",
            "scheduler.jobs_failed",
        ):
            self.metrics.counter(_name)
        #: Jobs currently executing, per pool shard name.
        self.inflight: Dict[str, int] = {}
        #: Exponentially-weighted events/sec over finished runs.
        self.events_ewma: Optional[float] = None

    # -- lifecycle spans --------------------------------------------
    #
    # Shared by the asyncio drain and the inline fast path so both
    # produce identical trace topology (the parity the CHK7xx tier
    # checks).  All are no-ops when no recorder is attached.

    def _job_ctx(self, job: Job) -> Optional[_dist.TraceContext]:
        if self.recorder is None:
            return None
        ctx = job.ctx
        return ctx if isinstance(ctx, _dist.TraceContext) else None

    def _record_wait(self, job: Job) -> None:
        """The queue-wait span: submission until the scheduler first
        picked the job up (or resolved it from cache)."""
        ctx = self._job_ctx(job)
        if ctx is None:
            return
        end_t = clock.now()
        self.recorder.record(_dist.LifecycleSpan(
            trace_id=ctx.trace_id,
            span_id=_dist.span_id_for(
                ctx.trace_id, _dist.SPAN_WAIT, job.spec_hash
            ),
            parent_span_id=ctx.span_id,
            name=_dist.SPAN_WAIT,
            start_t=job.submitted_at or end_t,
            end_t=end_t,
            attrs={"hash": job.spec_hash, "priority": job.priority},
        ))

    def _exec_ctx(self, job: Job) -> Optional[_dist.TraceContext]:
        """Context for the *current attempt's* execution span.  The ID
        is content-derived, so it is known before dispatch and the
        worker can stamp its exports without a round trip."""
        ctx = self._job_ctx(job)
        if ctx is None:
            return None
        return ctx.child(_dist.SPAN_EXEC, job.spec_hash, job.attempts)

    def _record_exec(
        self,
        job: Job,
        exec_ctx: Optional[_dist.TraceContext],
        start_t: float,
        status: str,
        worker: str,
        shard: str,
    ) -> None:
        if exec_ctx is None or self.recorder is None:
            return
        self.recorder.record(_dist.LifecycleSpan(
            trace_id=exec_ctx.trace_id,
            span_id=exec_ctx.span_id,
            parent_span_id=exec_ctx.parent_span_id,
            name=_dist.SPAN_EXEC,
            start_t=start_t,
            end_t=clock.now(),
            status=status,
            attrs={
                "hash": job.spec_hash,
                "attempt": job.attempts,
                "worker": worker,
                "shard": shard,
            },
        ))

    def _record_job_span(self, job: Job, outcome: str, status: str) -> None:
        """The per-job span, recorded just before the job turns
        terminal (so batch-completion callbacks observe it)."""
        ctx = self._job_ctx(job)
        if ctx is None:
            return
        end_t = clock.now()
        self.recorder.record(_dist.LifecycleSpan(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_span_id=ctx.parent_span_id,
            name=_dist.SPAN_JOB,
            start_t=job.submitted_at or end_t,
            end_t=end_t,
            status=status,
            attrs={
                "hash": job.spec_hash,
                "label": job.spec.label,
                "outcome": outcome,
                "attempts": job.attempts,
                "worker": job.worker or "local",
            },
        ))

    def _dump_flight(self, job: Job, reason: str) -> None:
        """Snapshot the flight ring next to the manifest when a job
        fails terminally — the black box for post-mortems."""
        if self.recorder is None or self.flight_dir is None:
            return
        self.recorder.dump_flight(
            self.flight_dir,
            reason=f"{reason}-{job.spec_hash[:12]}",
            t=clock.now(),
        )

    def _mark_cached(self, job: Job, hit: Any, queue: JobQueue) -> None:
        """Settle a cache hit with the same span topology as an
        executed job (wait + terminal; no exec span — nothing ran)."""
        job.worker = "cache"
        self.metrics.counter("scheduler.cache_hits").inc()
        self._record_wait(job)
        self._record_job_span(job, "cached", "ok")
        queue.mark_done(job, "cached", hit)

    # -- cache ------------------------------------------------------

    def resolve_cached(self, queue: JobQueue) -> int:
        """Settle every untouched pending job with a cache hit before
        any pool exists; returns the number of hits."""
        if self.cache is None:
            return 0
        hits = 0
        for job in queue.jobs():
            if job.state == PENDING and job.attempts == 0:
                hit = self.cache.get(job.spec)
                if hit is not None:
                    self._mark_cached(job, hit, queue)
                    hits += 1
        return hits

    def flush_telemetry(self, queue: JobQueue) -> None:
        """Push the result store's lifetime counters (plus queue
        dedup/completion counts) into the perf store — one snapshot
        line per batch."""
        if self.cache is None or self.perf_store is None:
            return
        telemetry = getattr(self.cache, "telemetry", None)
        if telemetry is None:
            return
        snapshot = dict(telemetry.to_dict())
        snapshot.update({"queue": queue.stats.to_dict(), "t": clock.now()})
        try:
            self.perf_store.record_cache(snapshot)
        except OSError:
            pass  # telemetry must never fail the batch it measured

    # -- batch entry points -----------------------------------------

    def run_batch(
        self, queue: JobQueue, sink: Optional[BatchSink] = None
    ) -> None:
        """Drive ``queue`` to completion, synchronously.

        Pools are built per call, sized to the actual cache misses
        (a fully-cached batch never forks a worker), and torn down
        afterwards — see the module docstring for why warm pools are
        reserved for the service.
        """
        if sink is not None:
            sink.start()
        try:
            self.on_retry = sink.on_retried if sink is not None else None
            self.resolve_cached(queue)
            if queue.open_jobs() > 0:
                drained = (
                    self.jobs <= 1
                    and not self.offload_inline
                    and self._drain_inline(queue)
                )
                if not drained:
                    _run_sync(self._drain(queue))
        finally:
            self.on_retry = None
            self.flush_telemetry(queue)
            if sink is not None:
                sink.finish()

    async def serve(self, queue: JobQueue) -> None:
        """Run until :meth:`stop`: pools stay warm, workers sleep on a
        kick event between submissions (the service kicks on submit)."""
        self.loop = asyncio.get_running_loop()
        self._stopping = False
        self._pools = build_pools(
            self.jobs, max(self.jobs, 2), offload_inline=True
        )
        try:
            await self._drain(queue, serve=True)
        finally:
            pools, self._pools = self._pools or [], None
            for pool in pools:
                pool.close()
            self.loop = None

    def stop(self) -> None:
        """Ask a serving scheduler to drain and exit (threadsafe)."""
        self._stopping = True
        self.kick_threadsafe()

    def kick_threadsafe(self) -> None:
        """Wake idle workers from another thread (service submit path)."""
        loop, kick = self.loop, self._kick
        if loop is not None and kick is not None:
            loop.call_soon_threadsafe(kick.set)

    # -- the drain --------------------------------------------------

    async def _drain(self, queue: JobQueue, serve: bool = False) -> None:
        self._kick = asyncio.Event()
        pools = self._pools
        own_pools = pools is None
        if own_pools:
            pools = build_pools(
                self.jobs, queue.open_jobs(),
                offload_inline=self.offload_inline,
            )
        assert pools is not None
        deques: List[Any] = [collections.deque() for _ in pools]
        if not serve:
            # Deal the ready jobs round-robin across the pool shards;
            # DAG-blocked jobs surface later via queue.pop().
            slot = 0
            while True:
                job = queue.pop()
                if job is None:
                    break
                deques[slot % len(deques)].append(job)
                slot += 1
        try:
            workers = [
                asyncio.ensure_future(
                    self._worker(queue, pools, deques, k, serve)
                )
                for k, pool in enumerate(pools)
                for _ in range(pool.capacity)
            ]
            await asyncio.gather(*workers)
        finally:
            if own_pools:
                for pool in pools:
                    pool.close()
            self._kick = None

    async def _worker(
        self,
        queue: JobQueue,
        pools: List[Any],
        deques: List[Any],
        pool_index: int,
        serve: bool,
    ) -> None:
        pool = pools[pool_index]
        mine = deques[pool_index]
        while True:
            job: Optional[Job] = None
            if mine:
                job = mine.popleft()
            if job is None:
                job = queue.pop()
            if job is None and len(deques) > 1:
                victim = max(
                    (d for k, d in enumerate(deques) if k != pool_index),
                    key=len,
                )
                if victim:
                    job = victim.pop()  # steal the coldest tail entry
                    self.metrics.counter("scheduler.steals").inc()
            if job is None:
                if queue.open_jobs() == 0 and (not serve or self._stopping):
                    return
                kick = self._kick
                assert kick is not None
                try:
                    await asyncio.wait_for(kick.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    pass
                else:
                    kick.clear()
                continue
            await self._run_job(job, pool, queue)
            if self._kick is not None:
                self._kick.set()  # a completion may have released deps

    async def _run_job(self, job: Job, pool: Any, queue: JobQueue) -> None:
        spec = job.spec
        if (
            self.worker_cache_check
            and self.cache is not None
            and job.attempts <= 1
        ):
            # Service mode: the job may have been satisfied by an
            # earlier batch since it was submitted.
            hit = self.cache.get(spec)
            if hit is not None:
                self._mark_cached(job, hit, queue)
                return
        self._record_wait(job)
        self.inflight[pool.name] = self.inflight.get(pool.name, 0) + 1
        try:
            await self._attempt_loop(job, pool, queue)
        finally:
            self.inflight[pool.name] = self.inflight.get(pool.name, 1) - 1

    async def _attempt_loop(
        self, job: Job, pool: Any, queue: JobQueue
    ) -> None:
        spec = job.spec
        prev_delay = self.retry.backoff_s
        while True:
            exec_ctx = self._exec_ctx(job)
            ctx_dict = exec_ctx.to_dict() if exec_ctx is not None else None
            span_start = clock.now()
            start = clock.perf()
            generation = pool.generation
            try:
                result, wall, worker, trace, perf = await pool.execute(
                    spec, self.timeout, self.obs, ctx_dict
                )
            except asyncio.CancelledError:
                raise
            except TimeoutError as exc:
                wall = clock.perf() - start
                job.worker = pool.name
                self._record_exec(
                    job, exec_ctx, span_start, "timeout", pool.name, pool.name
                )
                self.metrics.counter("scheduler.timeouts").inc()
                if self.retry.should_retry(job.attempts):
                    if self.on_retry is not None:
                        self.on_retry(job, wall)
                    queue.note_retry(job)
                    self.metrics.counter("scheduler.retries").inc()
                    prev_delay = self.retry.delay_s(
                        prev_delay, self._retry_rng
                    )
                    await asyncio.sleep(prev_delay)
                    continue
                job.wall_s = wall
                self._fail_job(job, queue, exc, "timeout")
                return
            except BrokenProcessPool as exc:
                # A worker died (OOM, hard crash): rebuild the pool and
                # retry the run within the ordinary budget.
                pool.restart(generation)
                job.worker = pool.name
                self._record_exec(
                    job, exec_ctx, span_start, "crashed", pool.name, pool.name
                )
                self.metrics.counter("scheduler.crashes").inc()
                if self.retry.should_retry(job.attempts):
                    if self.on_retry is not None:
                        self.on_retry(job, 0.0)
                    queue.note_retry(job)
                    self.metrics.counter("scheduler.retries").inc()
                    prev_delay = self.retry.delay_s(
                        prev_delay, self._retry_rng
                    )
                    await asyncio.sleep(prev_delay)
                    continue
                self._fail_job(job, queue, exc, "crash")
                return
            except Exception as exc:
                # Deterministic simulation failure: retrying would only
                # reproduce it, so fail immediately.
                job.wall_s = clock.perf() - start
                job.worker = pool.name
                self._record_exec(
                    job, exec_ctx, span_start, "error", pool.name, pool.name
                )
                self._fail_job(job, queue, exc, "error")
                return
            else:
                self._record_exec(
                    job, exec_ctx, span_start, "ok", worker, pool.name
                )
                self._finish_job(
                    job, queue, result, wall, worker, trace, perf
                )
                return

    def _fail_job(
        self, job: Job, queue: JobQueue, exc: BaseException, reason: str
    ) -> None:
        self.metrics.counter("scheduler.jobs_failed").inc()
        self._record_job_span(job, "failed", "failed")
        self._dump_flight(job, reason)
        queue.mark_failed(job, exc)

    def _finish_job(
        self,
        job: Job,
        queue: JobQueue,
        result: Any,
        wall: float,
        worker: str,
        trace: str,
        perf: Dict[str, Any],
    ) -> None:
        job.wall_s = wall
        job.worker = worker
        job.trace = trace
        job.perf = perf
        if self.cache is not None:
            self.cache.put(job.spec, result)
        if perf and self.perf_store is not None:
            try:
                self.perf_store.record(PerfRecord.from_dict(perf))
            except (KeyError, TypeError, ValueError, OSError):
                pass  # telemetry must never fail the run
        events_per_sec = (perf or {}).get("events_per_sec")
        if isinstance(events_per_sec, (int, float)) and events_per_sec > 0:
            self.events_ewma = (
                float(events_per_sec)
                if self.events_ewma is None
                else (1.0 - EWMA_ALPHA) * self.events_ewma
                + EWMA_ALPHA * float(events_per_sec)
            )
        self.metrics.counter("scheduler.jobs_done").inc()
        self._record_job_span(job, "executed", "ok")
        queue.mark_done(job, "executed", result)

    def _drain_inline(self, queue: JobQueue) -> bool:
        """``jobs<=1`` fast path: the same retry/timeout semantics as
        :meth:`_run_job`, with no event loop — per-batch asyncio setup
        costs more than a small batch's entire bookkeeping.

        Returns False (leaving the queue to the async drain) if the
        queue stalls with open jobs that a lone inline worker cannot
        release — which a dependency cycle would produce.
        """
        name = InlineWorkerPool.name
        while True:
            job = queue.pop()
            if job is None:
                return queue.open_jobs() == 0
            spec = job.spec
            if (
                self.worker_cache_check
                and self.cache is not None
                and job.attempts <= 1
            ):
                hit = self.cache.get(spec)
                if hit is not None:
                    self._mark_cached(job, hit, queue)
                    continue
            self._record_wait(job)
            self.inflight[name] = self.inflight.get(name, 0) + 1
            try:
                self._inline_attempts(job, queue)
            finally:
                self.inflight[name] = self.inflight.get(name, 1) - 1

    def _inline_attempts(self, job: Job, queue: JobQueue) -> None:
        """One job's retry loop on the inline path — span-for-span the
        same topology and counters as :meth:`_attempt_loop`."""
        spec = job.spec
        name = InlineWorkerPool.name
        prev_delay = self.retry.backoff_s
        while True:
            exec_ctx = self._exec_ctx(job)
            ctx_dict = exec_ctx.to_dict() if exec_ctx is not None else None
            span_start = clock.now()
            start = clock.perf()
            try:
                result, wall, worker, trace, perf = (
                    InlineWorkerPool._run(
                        spec, self.timeout, self.obs, ctx_dict
                    )
                )
            except TimeoutError as exc:
                wall = clock.perf() - start
                job.worker = name
                self._record_exec(
                    job, exec_ctx, span_start, "timeout", name, name
                )
                self.metrics.counter("scheduler.timeouts").inc()
                if self.retry.should_retry(job.attempts):
                    if self.on_retry is not None:
                        self.on_retry(job, wall)
                    queue.note_retry(job)
                    self.metrics.counter("scheduler.retries").inc()
                    prev_delay = self.retry.delay_s(
                        prev_delay, self._retry_rng
                    )
                    clock.sleep(prev_delay)
                    continue
                job.wall_s = wall
                self._fail_job(job, queue, exc, "timeout")
                return
            except Exception as exc:
                # Deterministic simulation failure: retrying would
                # only reproduce it, so fail immediately.
                job.wall_s = clock.perf() - start
                job.worker = name
                self._record_exec(
                    job, exec_ctx, span_start, "error", name, name
                )
                self._fail_job(job, queue, exc, "error")
                return
            else:
                self._record_exec(
                    job, exec_ctx, span_start, "ok", worker, name
                )
                self._finish_job(
                    job, queue, result, wall, worker, trace, perf
                )
                return


def _run_sync(coro: Any) -> Any:
    """Drive ``coro`` to completion from synchronous code.

    When the caller is already inside a running event loop (async code
    calling the sync facade), the coroutine runs on a private loop on a
    helper thread instead of deadlocking.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    box: Dict[str, Any] = {}

    def target() -> None:
        try:
            box["result"] = asyncio.run(coro)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join()
    if "error" in box:
        raise box["error"]
    return box.get("result")


__all__ = [
    "POOL_UNAVAILABLE",
    "BatchSink",
    "InlineWorkerPool",
    "ProcessWorkerPool",
    "RetryPolicy",
    "Scheduler",
    "TimeoutPolicy",
    "build_pools",
    "retry_delay_s",
]
