"""Live progress/metrics reporting for the execution runtime.

The executor calls :meth:`ProgressReporter.update` once per terminal
run outcome; the reporter keeps counters (completed / cached / failed),
derives throughput (runs/sec) and an ETA, and rewrites a single status
line on its stream at a bounded rate.  The clock is injectable so the
arithmetic is unit-testable without sleeping.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional, TextIO


@dataclass(frozen=True)
class ProgressSnapshot:
    """The reporter's counters and derived metrics at one instant."""

    total: int
    done: int
    executed: int
    cached: int
    failed: int
    elapsed_s: float
    runs_per_sec: float
    eta_s: Optional[float]
    #: Runs coalesced onto an identical spec hash (one execution, many
    #: waiters); counted into ``done``.  Defaulted last so callers
    #: constructing snapshots positionally keep working.
    deduped: int = 0

    @property
    def remaining(self) -> int:
        return self.total - self.done


class ProgressReporter:
    """Counts run outcomes and renders a throttled status line.

    ``stream=None`` keeps the reporter silent (counters only), which is
    what library callers use; the CLI hands it ``sys.stderr``.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stream = stream
        self.min_interval_s = min_interval_s
        self.clock = clock
        self.total = 0
        self.executed = 0
        self.cached = 0
        self.failed = 0
        self.deduped = 0
        self._started_at: Optional[float] = None
        self._last_render = float("-inf")

    def start(self, total: int) -> None:
        """Begin (or restart) a batch of ``total`` runs."""
        self.total = total
        self.executed = 0
        self.cached = 0
        self.failed = 0
        self.deduped = 0
        self._started_at = self.clock()
        self._last_render = float("-inf")

    def update(self, outcome: str) -> None:
        """Record one terminal outcome: executed / cached / deduped /
        failed."""
        if outcome == "executed":
            self.executed += 1
        elif outcome == "cached":
            self.cached += 1
        elif outcome == "deduped":
            self.deduped += 1
        elif outcome == "failed":
            self.failed += 1
        else:  # "retried" and friends don't finish a run
            return
        self._render()

    def snapshot(self) -> ProgressSnapshot:
        """Counters plus runs/sec and ETA right now."""
        now = self.clock()
        started = self._started_at if self._started_at is not None else now
        elapsed = max(0.0, now - started)
        done = self.executed + self.cached + self.deduped + self.failed
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = self.total - done
        eta = remaining / rate if rate > 0 and remaining > 0 else (
            0.0 if remaining == 0 else None
        )
        return ProgressSnapshot(
            total=self.total,
            done=done,
            executed=self.executed,
            cached=self.cached,
            failed=self.failed,
            elapsed_s=elapsed,
            runs_per_sec=rate,
            eta_s=eta,
            deduped=self.deduped,
        )

    def finish(self) -> ProgressSnapshot:
        """Force a final render (with newline) and return the snapshot."""
        snap = self.snapshot()
        if self.stream is not None:
            self.stream.write("\r" + self._format(snap) + "\n")
            self.stream.flush()
        return snap

    def _render(self) -> None:
        if self.stream is None:
            return
        now = self.clock()
        if now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        self.stream.write("\r" + self._format(self.snapshot()))
        self.stream.flush()

    @staticmethod
    def _format(snap: ProgressSnapshot) -> str:
        eta = f"{snap.eta_s:.0f}s" if snap.eta_s is not None else "?"
        deduped = f", {snap.deduped} deduped" if snap.deduped else ""
        return (
            f"runs {snap.done}/{snap.total} "
            f"({snap.executed} executed, {snap.cached} cached, "
            f"{snap.failed} failed{deduped}) "
            f"{snap.runs_per_sec:.2f} runs/s eta {eta}"
        )


def auto_reporter(enabled: object) -> Optional[ProgressReporter]:
    """Interpret a context's ``progress`` setting.

    ``None``/``False`` → no reporter; ``True`` → stderr; a
    :class:`ProgressReporter` instance is passed through.
    """
    if isinstance(enabled, ProgressReporter):
        return enabled
    if enabled:
        return ProgressReporter(stream=sys.stderr)
    return None
