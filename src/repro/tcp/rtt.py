"""Round-trip-time estimation (RFC 6298 style).

The estimator matters for two reasons in this reproduction:

* the MPTCP default scheduler prefers the subflow with the smallest
  smoothed RTT, and eMPTCP *zeroes* the measured RTT of a re-used
  subflow so it is re-probed quickly (§3.6);
* the eMPTCP bandwidth sampler derives its sampling interval δ from the
  RTT measured during subflow establishment (§3.2).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class RttEstimator:
    """Exponentially smoothed RTT with variance (RFC 6298).

    ``srtt`` and ``rttvar`` follow the standard update; ``rto`` is
    clamped to ``[min_rto, max_rto]``.
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0):
        if min_rto <= 0 or max_rto < min_rto:
            raise ConfigurationError("invalid RTO bounds")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self._initialized = False

    @property
    def initialized(self) -> bool:
        """True once at least one sample has been absorbed."""
        return self._initialized

    def observe(self, sample: float) -> None:
        """Feed one RTT measurement (seconds, must be positive)."""
        if sample <= 0:
            raise ConfigurationError(f"RTT sample must be positive, got {sample}")
        if not self._initialized:
            self.srtt = sample
            self.rttvar = sample / 2.0
            self._initialized = True
            return
        err = abs(self.srtt - sample)
        self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * err
        self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * sample

    def reset_to_zero(self) -> None:
        """eMPTCP §3.6: zero the RTT of a re-used subflow so the min-RTT
        scheduler probes it immediately.  The next ``observe`` call
        re-initializes the estimator from scratch."""
        self.srtt = 0.0
        self.rttvar = 0.0
        self._initialized = False

    @property
    def rto(self) -> float:
        """Retransmission timeout, clamped to the configured bounds."""
        if not self._initialized:
            return 1.0  # RFC 6298 initial RTO
        return min(self.max_rto, max(self.min_rto, self.srtt + 4 * self.rttvar))
