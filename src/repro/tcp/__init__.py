"""Single-path TCP substrate.

TCP is modelled at the fluid / round level: every round-trip time the
connection delivers ``min(cwnd, capacity x RTT)`` bytes, grows or
shrinks its window exactly as slow start / congestion avoidance would,
and suffers losses both randomly (wireless, contention) and
deterministically (bottleneck buffer overrun).  This is the level of
detail that drives everything the paper measures — per-path throughput
over time, ramp-up after idle, back-off under interference — without
simulating individual segments.
"""

from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.connection import FiniteSource, InfiniteSource, TcpConnection
from repro.tcp.rtt import RttEstimator

__all__ = [
    "FiniteSource",
    "InfiniteSource",
    "RenoCongestionControl",
    "RttEstimator",
    "TcpConnection",
]
