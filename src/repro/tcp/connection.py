"""A fluid, round-driven TCP connection.

Model
-----
Time is divided into *rounds* of one RTT.  At the start of a round the
connection asks its path for the currently available rate, computes the
effective RTT (base RTT plus queueing delay when the window exceeds the
bandwidth-delay product), and "sends" up to one congestion window of
data taken from its byte source.  One RTT later the round completes:
the bytes count as delivered/acknowledged, the congestion window grows
(or shrinks, on buffer overrun or random loss), and the next round
begins.

This reproduces the throughput dynamics that matter to the paper —
slow-start ramp, AIMD sawtooth under loss, bandwidth tracking when the
AP is modulated, stalling when capacity vanishes — at a cost of O(1)
events per RTT instead of per packet.

Byte sources
------------
A connection drains a :class:`ByteSource`.  Sources can be shared: an
MPTCP connection hands the *same* source to all of its subflows, which
is exactly how a multipath transfer splits a single data stream.
"""

from __future__ import annotations

import enum
import math
import random as _random
from typing import Callable, List, Optional, Protocol

from repro import obs as _obs
from repro.errors import ConfigurationError, ProtocolError
from repro.net.path import NetworkPath
from repro.sim.engine import EventHandle, Simulator
from repro.tcp.congestion import DEFAULT_MSS, RenoCongestionControl
from repro.tcp.rtt import RttEstimator


class ByteSource(Protocol):
    """A stream of application bytes to transfer."""

    def take(self, max_bytes: float) -> float:
        """Consume and return up to ``max_bytes`` from the stream."""
        ...

    @property
    def remaining(self) -> float:
        """Bytes left (``math.inf`` for unbounded sources)."""
        ...

    @property
    def exhausted(self) -> bool:
        """True when no bytes remain."""
        ...


class FiniteSource:
    """A fixed-size transfer (file download of ``total`` bytes)."""

    def __init__(self, total: float):
        if total <= 0:
            raise ConfigurationError(f"transfer size must be positive, got {total}")
        self.total = total
        self.taken = 0.0

    def take(self, max_bytes: float) -> float:
        grant = min(max_bytes, self.total - self.taken)
        grant = max(0.0, grant)
        self.taken += grant
        return grant

    @property
    def remaining(self) -> float:
        return self.total - self.taken

    @property
    def exhausted(self) -> bool:
        return self.taken >= self.total


class InfiniteSource:
    """An unbounded transfer (backlogged sender, §4.5-style measurement
    windows where we count bytes downloaded in a fixed time)."""

    def __init__(self) -> None:
        self.taken = 0.0

    def take(self, max_bytes: float) -> float:
        self.taken += max_bytes
        return max_bytes

    @property
    def remaining(self) -> float:
        return math.inf

    @property
    def exhausted(self) -> bool:
        return False


class TcpState(enum.Enum):
    """Connection lifecycle states."""

    CREATED = "created"
    CONNECTING = "connecting"
    ESTABLISHED = "established"
    CLOSED = "closed"


RateListener = Callable[[float, float], None]  # (time, bytes_per_sec)
DeliveryListener = Callable[["TcpConnection", float], None]  # (conn, bytes)


class TcpConnection:
    """One fluid TCP connection over a single :class:`NetworkPath`.

    Parameters
    ----------
    sim, path, source:
        The simulator, the path to run over, and the byte stream to
        drain (possibly shared with other connections).
    rng:
        Random stream for loss draws.
    rfc2861_idle_reset:
        When True (standard TCP), the congestion window collapses after
        an idle period longer than the RTO.  eMPTCP disables this on
        re-used subflows (§3.6).
    coupling:
        Optional callable returning the congestion-avoidance coupling
        factor for the current round; MPTCP-LIA plugs in here.
    """

    def __init__(
        self,
        sim: Simulator,
        path: NetworkPath,
        source: ByteSource,
        rng: Optional[_random.Random] = None,
        mss: float = DEFAULT_MSS,
        rfc2861_idle_reset: bool = True,
        coupling: Optional[Callable[[], float]] = None,
        name: str = "tcp",
    ):
        self.sim = sim
        self.path = path
        self.source = source
        self.rng = rng or _random.Random(0)
        self.mss = mss
        self.rfc2861_idle_reset = rfc2861_idle_reset
        self.coupling = coupling
        self.name = name

        self.cc = RenoCongestionControl(mss=mss)
        self.rtt_estimator = RttEstimator()
        #: Optional hook limiting the usable rate below the path's fair
        #: share.  MPTCP installs its scheduler-utilization model here
        #: (higher-RTT subflows are starved by min-RTT scheduling and
        #: receive-window head-of-line blocking when the preferred
        #: subflow is fast).  Called with the achievable rate; returns
        #: the allowed rate.
        self.rate_shaper: Optional[Callable[[float], float]] = None
        self.state = TcpState.CREATED
        self.paused = False
        self.handshake_rtt: Optional[float] = None
        self.bytes_delivered = 0.0
        self.established_at: Optional[float] = None
        self.last_activity: Optional[float] = None

        self._round_pending: Optional[EventHandle] = None
        self._round_in_flight = False
        self._current_rate = 0.0
        self._rate_listeners: List[RateListener] = []
        self._delivery_listeners: List[DeliveryListener] = []
        self._established_listeners: List[Callable[["TcpConnection"], None]] = []
        self._stall_retry: Optional[EventHandle] = None
        self._trace = _obs.tracer_or_none()
        metrics = _obs.metrics_or_none()
        self._loss_counter = (
            metrics.counter(f"tcp.losses.{path.interface.kind.value}")
            if metrics is not None
            else None
        )

    # ------------------------------------------------------------------
    # listeners

    def on_rate_change(self, listener: RateListener) -> None:
        """Subscribe to send-rate changes (drives energy accounting)."""
        self._rate_listeners.append(listener)

    def on_delivery(self, listener: DeliveryListener) -> None:
        """Subscribe to per-round delivered-byte notifications."""
        self._delivery_listeners.append(listener)

    def on_established(self, listener: Callable[["TcpConnection"], None]) -> None:
        """Subscribe to handshake completion."""
        self._established_listeners.append(listener)

    # ------------------------------------------------------------------
    # lifecycle

    def connect(self, extra_delay: float = 0.0) -> None:
        """Begin the three-way handshake.

        ``extra_delay`` models anything that must happen before the SYN
        can leave (e.g. a cellular promotion from RRC idle).
        """
        if self.state is not TcpState.CREATED:
            raise ProtocolError(f"connect() in state {self.state}")
        self.state = TcpState.CONNECTING
        self.path.register_flow(self)
        rrc = getattr(self.path, "rrc", None)
        if rrc is not None:
            extra_delay += rrc.on_activity(self.sim.now)
        self.sim.schedule(extra_delay + self.path.base_rtt, self._handshake_done)

    def _handshake_done(self) -> None:
        if self.state is not TcpState.CONNECTING:
            return
        self.state = TcpState.ESTABLISHED
        self.established_at = self.sim.now
        self.handshake_rtt = self.path.base_rtt
        self.rtt_estimator.observe(self.handshake_rtt)
        self.last_activity = self.sim.now
        for listener in list(self._established_listeners):
            listener(self)
        self._start_round()

    def close(self) -> None:
        """Tear the connection down and release path resources."""
        if self.state is TcpState.CLOSED:
            return
        self.state = TcpState.CLOSED
        self._cancel_pending()
        self._set_rate(0.0)
        self.path.unregister_flow(self)

    def pause(self) -> None:
        """Stop sending (MP_PRIO low / backup).  The connection stays
        established; in-flight data still completes its round."""
        self.paused = True
        # A pending round that has not started sending yet is cancelled.
        if self._round_pending is not None and not self._round_in_flight:
            self._cancel_pending()
        if not self._round_in_flight:
            self._set_rate(0.0)

    def resume(self, reset_rtt: bool = False) -> None:
        """Resume sending after :meth:`pause`.

        ``reset_rtt=True`` applies eMPTCP's re-use tweak (§3.6): zero
        the RTT estimate so the MPTCP scheduler re-probes the subflow.
        When ``rfc2861_idle_reset`` is set and the idle period exceeded
        the RTO, the window collapses first (standard TCP behaviour
        that eMPTCP disables).
        """
        if self.state is not TcpState.ESTABLISHED:
            raise ProtocolError(f"resume() in state {self.state}")
        if not self.paused:
            return
        self.paused = False
        self._apply_idle_rules(reset_rtt)
        self._start_round()

    def notify_data(self) -> None:
        """Tell an idle connection that its source has bytes again
        (persistent HTTP connections fetching the next object)."""
        if self.state is not TcpState.ESTABLISHED or self.paused:
            return
        if self._round_pending is None and not self._round_in_flight:
            self._apply_idle_rules(reset_rtt=False)
            self._start_round()

    def _apply_idle_rules(self, reset_rtt: bool) -> None:
        idle = (
            self.sim.now - self.last_activity
            if self.last_activity is not None
            else 0.0
        )
        if self.rfc2861_idle_reset and idle > self.rtt_estimator.rto:
            self.cc.reset_after_idle()
        if reset_rtt:
            self.rtt_estimator.reset_to_zero()

    # ------------------------------------------------------------------
    # state inspection

    @property
    def sending(self) -> bool:
        """True while actively transferring — including while stalled on
        a zero-capacity path with a retry pending (the flow is *trying*
        to send; eMPTCP's idle detection must not mistake an outage for
        an idle connection)."""
        return (
            self.state is TcpState.ESTABLISHED
            and not self.paused
            and (
                self._round_in_flight
                or self._round_pending is not None
                or self._stall_retry is not None
            )
        )

    @property
    def in_flight(self) -> bool:
        """True while a round is actually in flight or scheduled —
        unlike :attr:`sending`, a stall retry does not count (it
        carries no data, so it must not block transfer completion)."""
        return (
            self.state is TcpState.ESTABLISHED
            and not self.paused
            and (self._round_in_flight or self._round_pending is not None)
        )

    @property
    def established(self) -> bool:
        """True while the connection is up."""
        return self.state is TcpState.ESTABLISHED

    @property
    def current_rate(self) -> float:
        """Instantaneous send rate, bytes/s (0 when idle/paused)."""
        return self._current_rate

    @property
    def srtt(self) -> float:
        """Smoothed RTT estimate (0 after an eMPTCP reset)."""
        return self.rtt_estimator.srtt

    # ------------------------------------------------------------------
    # the round engine

    def _cancel_pending(self) -> None:
        if self._round_pending is not None:
            self._round_pending.cancel()
            self._round_pending = None
        if self._stall_retry is not None:
            self._stall_retry.cancel()
            self._stall_retry = None

    def _start_round(self) -> None:
        """Kick off a round immediately (idempotent)."""
        if self.state is not TcpState.ESTABLISHED or self.paused:
            return
        if self._round_in_flight or self._round_pending is not None:
            return
        self._round_pending = self.sim.schedule(0.0, self._round)

    def _round(self) -> None:
        self._round_pending = None
        if self.state is not TcpState.ESTABLISHED or self.paused:
            return
        if self.source.exhausted:
            self._go_idle()
            return
        rrc = getattr(self.path, "rrc", None)
        if rrc is not None:
            # An idle cellular radio must promote before data can flow.
            wait = rrc.on_activity(self.sim.now)
            if wait > 0:
                self._round_pending = self.sim.schedule(wait, self._round)
                return
        cap = self.path.available_rate(self)
        if self.rate_shaper is not None and cap > 0:
            cap = max(0.0, min(cap, self.rate_shaper(cap)))
        if cap <= 0:
            self._stall()
            return
        base = self.path.base_rtt
        bdp = cap * base
        buffer_bytes = self.path.effective_buffer(cap)
        queue = min(buffer_bytes, max(0.0, self.cc.cwnd - bdp))
        rtt = base + queue / cap
        deliverable = min(self.cc.cwnd, bdp + buffer_bytes)
        granted = self.source.take(deliverable)
        if granted <= 0:
            self._go_idle()
            return
        overflow = self.cc.cwnd > bdp + buffer_bytes * 1.0001
        self._round_in_flight = True
        self._set_rate(granted / rtt)
        self.sim.schedule(rtt, self._round_end, granted, rtt, overflow)

    def _round_end(self, granted: float, rtt: float, overflow: bool) -> None:
        self._round_in_flight = False
        if self.state is not TcpState.ESTABLISHED:
            return
        self.bytes_delivered += granted
        self.last_activity = self.sim.now
        self.rtt_estimator.observe(rtt)
        rrc = getattr(self.path, "rrc", None)
        if rrc is not None:
            rrc.on_activity(self.sim.now)
        if overflow or self._random_loss(granted):
            self.cc.on_loss()
            if self._trace is not None:
                self._trace.emit(
                    "tcp.loss",
                    t=self.sim.now,
                    conn=self.name,
                    interface=self.path.interface.kind.value,
                )
            if self._loss_counter is not None:
                self._loss_counter.inc()
        else:
            factor = self.coupling() if self.coupling is not None else 1.0
            self.cc.on_ack(granted, coupling=factor)
        for listener in list(self._delivery_listeners):
            listener(self, granted)
        if self.state is not TcpState.ESTABLISHED or self.paused:
            self._set_rate(0.0)
            return
        if self.source.exhausted:
            self._go_idle()
        else:
            self._round_pending = self.sim.schedule(0.0, self._round)

    def _random_loss(self, granted: float) -> bool:
        p_pkt = self.path.packet_loss_rate()
        if p_pkt <= 0 or granted <= 0:
            return False
        n_packets = max(1.0, granted / self.mss)
        p_round = 1.0 - (1.0 - p_pkt) ** n_packets
        return self.rng.random() < p_round

    def _go_idle(self) -> None:
        self._set_rate(0.0)

    def _stall(self) -> None:
        """No capacity (interface down / zero rate): back off one RTO."""
        self._set_rate(0.0)
        self.cc.on_timeout()
        retry = max(self.rtt_estimator.rto, 0.5)
        self._stall_retry = self.sim.schedule(retry, self._retry_after_stall)

    def _retry_after_stall(self) -> None:
        self._stall_retry = None
        self._start_round()

    def _set_rate(self, rate: float) -> None:
        if rate == self._current_rate:
            return
        self._current_rate = rate
        self.path.notify_rate(self, rate)
        for listener in list(self._rate_listeners):
            listener(self.sim.now, rate)
