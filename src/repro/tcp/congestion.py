"""Reno-style congestion control for the fluid TCP model.

The window is kept in bytes.  Growth follows slow start (double per
RTT, i.e. +1 byte per acked byte) until ``ssthresh``, then congestion
avoidance (+MSS per RTT).  Loss halves the window.  The increase step
accepts an optional *coupling factor* so MPTCP's Linked-Increases
Algorithm (RFC 6356) can scale congestion-avoidance growth across
subflows — see :mod:`repro.mptcp.coupled`.

RFC 2861 congestion-window validation is modelled by
:meth:`RenoCongestionControl.reset_after_idle`: standard TCP collapses
the window back to the initial window after an idle period longer than
one RTO.  eMPTCP explicitly disables this for re-used subflows (§3.6),
which is one of the knobs the ablation benchmarks exercise.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Default maximum segment size, bytes (1500 MTU - 40 IP/TCP - 12 options).
DEFAULT_MSS = 1448.0

#: Default initial window, segments (RFC 6928).
DEFAULT_INIT_CWND_SEGMENTS = 10


class RenoCongestionControl:
    """NewReno-flavoured AIMD state machine on a fluid window."""

    def __init__(
        self,
        mss: float = DEFAULT_MSS,
        init_cwnd_segments: int = DEFAULT_INIT_CWND_SEGMENTS,
        max_cwnd: float = 64 * 1024 * 1024,
    ):
        if mss <= 0:
            raise ConfigurationError("mss must be positive")
        if init_cwnd_segments < 1:
            raise ConfigurationError("init_cwnd_segments must be >= 1")
        self.mss = mss
        self.init_cwnd = init_cwnd_segments * mss
        self.max_cwnd = max_cwnd
        self.cwnd = self.init_cwnd
        self.ssthresh = math.inf
        self.losses = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        """True while below ``ssthresh``."""
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: float, coupling: float = 1.0) -> None:
        """Grow the window for ``acked_bytes`` newly acknowledged bytes.

        ``coupling`` scales the congestion-avoidance increase; 1.0 is
        uncoupled Reno, MPTCP-LIA passes ``min(alpha * cwnd_i /
        cwnd_total, 1)``-style factors.  Slow start is never coupled
        (RFC 6356 couples only the linear-increase phase).
        """
        if acked_bytes < 0:
            raise ConfigurationError("acked_bytes must be >= 0")
        if acked_bytes == 0:
            return
        if self.in_slow_start:
            grow = acked_bytes
            # Do not overshoot ssthresh within a single burst.
            if math.isfinite(self.ssthresh):
                grow = min(grow, max(0.0, self.ssthresh - self.cwnd))
            self.cwnd += grow
        else:
            self.cwnd += max(0.0, coupling) * self.mss * (acked_bytes / self.cwnd)
        self.cwnd = min(self.cwnd, self.max_cwnd)

    def on_loss(self) -> None:
        """Fast-retransmit style multiplicative decrease."""
        self.losses += 1
        self.ssthresh = max(self.cwnd / 2.0, 2 * self.mss)
        self.cwnd = self.ssthresh

    def on_timeout(self) -> None:
        """RTO: collapse to one initial window and re-enter slow start."""
        self.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2 * self.mss)
        self.cwnd = self.init_cwnd

    def reset_after_idle(self) -> None:
        """RFC 2861 window validation after an idle period > RTO."""
        self.ssthresh = max(self.ssthresh, 3 * self.cwnd / 4.0)
        self.cwnd = self.init_cwnd
