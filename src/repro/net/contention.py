"""A contended WiFi channel shared with interfering nodes (§4.4).

The paper places n ∈ {2, 3} interfering nodes on the same WiFi channel,
each blasting UDP according to a two-state Markov on-off process.  The
effects on the foreground TCP flow are (a) less air time, so lower
available bandwidth, and (b) collisions, so packet loss and the CWND
back-off the paper observes.

This module models both with a simple but well-behaved abstraction: the
channel subtracts the offered load of active interferers from the AP
capacity, applies a per-active-node airtime (CSMA overhead) penalty, and
raises the per-packet loss probability linearly in the number of active
interferers.
"""

from __future__ import annotations

from typing import Callable, List, Protocol

from repro.errors import ConfigurationError
from repro.net.bandwidth import CapacityProcess


class InterferingNode(Protocol):
    """Anything that can occupy the channel.

    Concrete implementation: :class:`repro.workloads.background.OnOffUdpNode`.
    """

    @property
    def active(self) -> bool:
        """True while the node is transmitting."""
        ...

    @property
    def rate(self) -> float:
        """Offered UDP load in bytes/s while active."""
        ...


class WiFiChannel:
    """An 802.11 channel shared between the device and interferers.

    Parameters
    ----------
    capacity:
        The AP's capacity process (what the channel can deliver with no
        contention).
    airtime_overhead:
        Fractional efficiency loss per *active* contending station;
        models CSMA backoff and collision retries.  With overhead 0.08
        and two active interferers the foreground flow sees
        ``(1 - 0.16)`` of the residual capacity.
    loss_per_active_node:
        Additional per-packet loss probability contributed by each
        active interferer.  Kept small by default: 802.11 MAC-layer
        retransmissions hide most collision losses from TCP, so
        contention is felt mainly as lost airtime.
    """

    def __init__(
        self,
        capacity: CapacityProcess,
        airtime_overhead: float = 0.10,
        loss_per_active_node: float = 0.0005,
    ):
        if not 0 <= airtime_overhead < 1:
            raise ConfigurationError("airtime_overhead must be in [0, 1)")
        if not 0 <= loss_per_active_node < 1:
            raise ConfigurationError("loss_per_active_node must be in [0, 1)")
        self.capacity = capacity
        self.airtime_overhead = airtime_overhead
        self.loss_per_active_node = loss_per_active_node
        self._nodes: List[InterferingNode] = []

    def add_interferer(self, node: InterferingNode) -> None:
        """Attach an interfering node to the channel."""
        self._nodes.append(node)

    @property
    def interferers(self) -> List[InterferingNode]:
        """All attached interfering nodes (active or not)."""
        return list(self._nodes)

    @property
    def active_interferers(self) -> int:
        """Number of currently transmitting interferers."""
        return sum(1 for n in self._nodes if n.active)

    def background_load(self) -> float:
        """Total offered UDP load of active interferers, bytes/s."""
        return sum(n.rate for n in self._nodes if n.active)

    def available_rate(self) -> float:
        """Capacity left for the foreground flow, bytes/s.

        Residual capacity after background traffic, degraded by the
        airtime penalty of each active contender; never negative.
        """
        residual = max(0.0, self.capacity.rate - self.background_load())
        efficiency = max(0.0, 1.0 - self.airtime_overhead * self.active_interferers)
        return residual * efficiency

    def extra_loss(self) -> float:
        """Additional per-packet loss probability from contention."""
        return min(0.5, self.loss_per_active_node * self.active_interferers)


ChannelFactory = Callable[[CapacityProcess], WiFiChannel]
