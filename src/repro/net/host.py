"""Hosts: the mobile device under test and the remote servers.

The device groups the interfaces of Table 1; the energy side (profile,
meter, RRC machines) is wired up by :mod:`repro.experiments.runner`, so
this module stays free of energy-model imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError
from repro.net.interface import InterfaceKind, NetworkInterface


class MobileDevice:
    """A multi-homed mobile client (e.g. Galaxy S3, Nexus 5)."""

    def __init__(self, name: str, interfaces: Iterable[NetworkInterface]):
        self.name = name
        self.interfaces: Dict[InterfaceKind, NetworkInterface] = {}
        for iface in interfaces:
            if iface.kind in self.interfaces:
                raise ConfigurationError(f"duplicate interface kind {iface.kind}")
            self.interfaces[iface.kind] = iface
        if InterfaceKind.WIFI not in self.interfaces:
            raise ConfigurationError("device must have a WiFi interface")

    @property
    def wifi(self) -> NetworkInterface:
        """The WiFi interface (eMPTCP's default primary interface)."""
        return self.interfaces[InterfaceKind.WIFI]

    def cellular(self) -> Optional[NetworkInterface]:
        """The cellular interface if present (LTE preferred over 3G)."""
        for kind in (InterfaceKind.LTE, InterfaceKind.THREEG):
            if kind in self.interfaces:
                return self.interfaces[kind]
        return None

    @classmethod
    def dual_homed(cls, name: str = "device", cellular: InterfaceKind = InterfaceKind.LTE) -> "MobileDevice":
        """Convenience constructor: WiFi + one cellular interface."""
        if not cellular.is_cellular:
            raise ConfigurationError(f"{cellular} is not a cellular kind")
        return cls(name, [NetworkInterface(InterfaceKind.WIFI), NetworkInterface(cellular)])


@dataclass
class Server:
    """A download server; §5 deploys them in SNG, AMS and WDC.

    ``internet_rtt`` is the wide-area component of the round-trip time,
    added to the access-link latency when building paths.
    """

    name: str
    internet_rtt: float
    location: str = field(default="")

    def __post_init__(self) -> None:
        if self.internet_rtt < 0:
            raise ConfigurationError("internet_rtt must be >= 0")


#: The three in-the-wild servers of §5 with representative WAN RTTs
#: from the US East Coast.
WILD_SERVERS = {
    "WDC": Server("WDC", internet_rtt=0.025, location="Washington D.C., USA"),
    "AMS": Server("AMS", internet_rtt=0.095, location="Amsterdam, NL"),
    "SNG": Server("SNG", internet_rtt=0.240, location="Singapore"),
}
