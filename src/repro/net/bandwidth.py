"""Time-varying link capacity processes.

Each experiment section of the paper modulates capacity differently:

* §4.2 static: constant high (>10 Mbps) or low (<1 Mbps) WiFi.
* §4.3 random: a two-state Markov on-off process, exponentially
  distributed dwell times with mean 40 s, switching the AP between
  ≤1 Mbps and ≥10 Mbps.
* §4.5 mobility: capacity derived from device-to-AP distance along a
  route (generated as a piecewise trace by :mod:`repro.workloads.mobility`).

A capacity process is attached to a simulator once; it then schedules
its own transition events and notifies listeners, so flows, channels and
predictors can react at the exact switch times.
"""

from __future__ import annotations

import random as _random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Simulator

ChangeListener = Callable[[float, float], None]  # (time, new_rate)


class CapacityProcess:
    """Base class: a link capacity (bytes/s) evolving over time."""

    def __init__(self, initial_rate: float):
        if initial_rate < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {initial_rate}")
        self._rate = initial_rate
        self._sim: Optional[Simulator] = None
        self._listeners: List[ChangeListener] = []

    @property
    def rate(self) -> float:
        """Current capacity in bytes per second."""
        return self._rate

    @property
    def attached(self) -> bool:
        """True once :meth:`attach` has been called."""
        return self._sim is not None

    def attach(self, sim: Simulator) -> None:
        """Bind to a simulator and begin scheduling transitions."""
        if self._sim is not None:
            raise SimulationError("capacity process already attached")
        self._sim = sim
        self._start()

    def on_change(self, listener: ChangeListener) -> None:
        """Register a callback invoked as ``listener(time, new_rate)``."""
        self._listeners.append(listener)

    def _set_rate(self, rate: float) -> None:
        assert self._sim is not None
        self._rate = rate
        for listener in list(self._listeners):
            listener(self._sim.now, rate)

    def _start(self) -> None:
        """Hook for subclasses to schedule their first transition."""


class ConstantCapacity(CapacityProcess):
    """A link whose capacity never changes (§4.2 static experiments)."""

    def __init__(self, rate: float):
        super().__init__(rate)


class TwoStateMarkovCapacity(CapacityProcess):
    """Two-state on-off capacity modulation (§4.3).

    Dwell times in each state are exponentially distributed.  The paper
    uses mean 40 s in both states with rates ≤1 Mbps (off/low) and
    ≥10 Mbps (on/high).
    """

    def __init__(
        self,
        high_rate: float,
        low_rate: float,
        mean_high: float,
        mean_low: float,
        rng: _random.Random,
        start_high: bool = True,
    ):
        if high_rate < low_rate:
            raise ConfigurationError("high_rate must be >= low_rate")
        if mean_high <= 0 or mean_low <= 0:
            raise ConfigurationError("mean dwell times must be positive")
        super().__init__(high_rate if start_high else low_rate)
        self.high_rate = high_rate
        self.low_rate = low_rate
        self.mean_high = mean_high
        self.mean_low = mean_low
        self._rng = rng
        self._high = start_high

    def _start(self) -> None:
        self._schedule_flip()

    def _schedule_flip(self) -> None:
        assert self._sim is not None
        mean = self.mean_high if self._high else self.mean_low
        dwell = self._rng.expovariate(1.0 / mean)
        self._sim.schedule(dwell, self._flip)

    def _flip(self) -> None:
        self._high = not self._high
        self._set_rate(self.high_rate if self._high else self.low_rate)
        self._schedule_flip()


class PiecewiseTraceCapacity(CapacityProcess):
    """Capacity following a fixed ``(time, rate)`` trace.

    Used for mobility (the route of Figure 11 is converted into a rate
    trace by :func:`repro.workloads.mobility.route_capacity_trace`) and
    for replaying recorded conditions.  Breakpoint times must be
    strictly increasing and start at a time >= 0; the rate before the
    first breakpoint is the first breakpoint's rate.
    """

    def __init__(self, trace: Sequence[Tuple[float, float]]):
        if not trace:
            raise ConfigurationError("trace must not be empty")
        times = [t for t, _ in trace]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("trace times must be strictly increasing")
        if times[0] < 0:
            raise ConfigurationError("trace must not start before t=0")
        if any(r < 0 for _, r in trace):
            raise ConfigurationError("trace rates must be >= 0")
        super().__init__(trace[0][1])
        self._trace = list(trace)
        self._next_idx = 1

    def _start(self) -> None:
        assert self._sim is not None
        if self._sim.now > self._trace[0][0]:
            raise SimulationError("trace starts in the past")
        self._schedule_next()

    def _schedule_next(self) -> None:
        assert self._sim is not None
        if self._next_idx >= len(self._trace):
            return
        t, rate = self._trace[self._next_idx]
        self._next_idx += 1
        self._sim.schedule_at(t, self._apply, rate)

    def _apply(self, rate: float) -> None:
        self._set_rate(rate)
        self._schedule_next()
