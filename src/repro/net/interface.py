"""Network interface kinds and per-device interface objects.

The paper's devices expose a WiFi interface and a cellular (3G or LTE)
interface.  eMPTCP identifies which interface a subflow runs over by
inspecting kernel routing structures (§3.6, ``ieee80211_ptr``); here the
binding is explicit: every :class:`~repro.net.path.NetworkPath` carries
the interface it traverses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class InterfaceKind(enum.Enum):
    """The radio technology behind an interface."""

    WIFI = "wifi"
    LTE = "lte"
    THREEG = "3g"

    @property
    def is_cellular(self) -> bool:
        """True for 3G/LTE — the interfaces with promotion/tail costs."""
        return self in (InterfaceKind.LTE, InterfaceKind.THREEG)

    @property
    def is_wifi(self) -> bool:
        """True for WiFi (the paper's default/primary interface)."""
        return self is InterfaceKind.WIFI

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class NetworkInterface:
    """One network interface on a device.

    ``up`` models administrative/link state: an interface that is down
    (e.g. WiFi after walking out of AP association range) carries no
    subflows and triggers break-handling in MPTCP.
    """

    kind: InterfaceKind
    name: str = ""
    up: bool = True
    #: Free-form notes (chipset etc.; Table 1 flavour, not used by logic).
    description: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = {"wifi": "wlan0", "lte": "rmnet0", "3g": "rmnet0"}[
                self.kind.value
            ]
