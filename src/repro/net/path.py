"""End-to-end network paths.

A :class:`NetworkPath` is what an MPTCP subflow runs over: one device
interface, through (possibly) a contended WiFi channel, across the
Internet to the server.  It aggregates everything TCP needs to know:

* the current capacity available to a given flow (fair share of the
  residual channel capacity),
* the base round-trip time (AP/cell latency + Internet RTT to the
  server region),
* the per-packet loss probability (base path loss + contention loss),
* the bottleneck buffer (which bounds queueing delay and triggers
  congestion loss when overrun).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.errors import ConfigurationError
from repro.net.bandwidth import CapacityProcess
from repro.net.contention import WiFiChannel
from repro.net.interface import NetworkInterface
from repro.sim.engine import Simulator

#: Default bottleneck buffer, bytes.  Roughly 87 full-size segments —
#: a typical AP/eNodeB per-UE queue; enough for full utilisation at the
#: paper's rates without absurd bufferbloat.
DEFAULT_BUFFER_BYTES = 126_000.0


class AttachedFlow(Protocol):
    """The slice of a TCP flow the path needs to see."""

    @property
    def sending(self) -> bool:
        """True while the flow is actively transferring."""
        ...


class NetworkPath:
    """One end-to-end path between the mobile device and a server."""

    def __init__(
        self,
        interface: NetworkInterface,
        capacity: CapacityProcess,
        base_rtt: float,
        loss_rate: float = 0.0,
        channel: Optional[WiFiChannel] = None,
        buffer_bytes: float = DEFAULT_BUFFER_BYTES,
        max_queue_delay: float = 1.0,
        name: str = "",
    ):
        if base_rtt <= 0:
            raise ConfigurationError(f"base_rtt must be positive, got {base_rtt}")
        if not 0 <= loss_rate < 1:
            raise ConfigurationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if buffer_bytes <= 0:
            raise ConfigurationError("buffer_bytes must be positive")
        if max_queue_delay <= 0:
            raise ConfigurationError("max_queue_delay must be positive")
        if channel is not None and channel.capacity is not capacity:
            raise ConfigurationError(
                "channel must wrap the same capacity process as the path"
            )
        self.interface = interface
        self.capacity = capacity
        self.base_rtt = base_rtt
        self.loss_rate = loss_rate
        self.channel = channel
        self.buffer_bytes = buffer_bytes
        self.max_queue_delay = max_queue_delay
        self.name = name or f"path-{interface.kind.value}"
        self._flows: List[AttachedFlow] = []
        self._sim: Optional[Simulator] = None
        self._flow_rates: Dict[int, float] = {}
        self._rate_listeners: List[Callable[[float, float], None]] = []
        #: Optional RRC machine for cellular paths; assigned by the
        #: experiment runner.  TCP consults it for promotion latency.
        self.rrc = None

    def attach(self, sim: Simulator) -> None:
        """Bind the path (and its capacity process) to a simulator."""
        self._sim = sim
        if not self.capacity.attached:
            self.capacity.attach(sim)

    # -- flow registry -------------------------------------------------

    def register_flow(self, flow: AttachedFlow) -> None:
        """Attach a flow; it will share the path capacity."""
        if flow not in self._flows:
            self._flows.append(flow)

    def unregister_flow(self, flow: AttachedFlow) -> None:
        """Detach a flow (closing a connection)."""
        if flow in self._flows:
            self._flows.remove(flow)
        if id(flow) in self._flow_rates:
            del self._flow_rates[id(flow)]
            self._notify_rate()

    # -- aggregate rate (drives the energy meter) ------------------------

    def notify_rate(self, flow: AttachedFlow, rate: float) -> None:
        """Report one flow's current send rate (bytes/s)."""
        if rate <= 0:
            self._flow_rates.pop(id(flow), None)
        else:
            self._flow_rates[id(flow)] = rate
        self._notify_rate()

    @property
    def aggregate_rate(self) -> float:
        """Sum of all flows' current rates on this path, bytes/s."""
        return sum(self._flow_rates.values())

    def on_aggregate_rate(self, listener: Callable[[float, float], None]) -> None:
        """Subscribe to aggregate-rate changes as ``(time, bytes/s)``."""
        self._rate_listeners.append(listener)

    def _notify_rate(self) -> None:
        if not self._rate_listeners:
            return
        now = self._sim.now if self._sim is not None else 0.0
        rate = self.aggregate_rate
        for listener in list(self._rate_listeners):
            listener(now, rate)

    def active_senders(self) -> int:
        """Number of currently sending flows on the path."""
        return sum(1 for f in self._flows if f.sending)

    # -- what TCP asks for ----------------------------------------------

    def total_available_rate(self) -> float:
        """Capacity available to foreground flows, bytes/s."""
        if not self.is_up:
            return 0.0
        if self.channel is not None:
            return self.channel.available_rate()
        return self.capacity.rate

    def available_rate(self, flow: AttachedFlow) -> float:
        """Fair share of the path capacity for ``flow``, bytes/s.

        The share divides the available capacity among *sending* flows;
        ``flow`` counts as a sender even if it is only about to start.
        """
        senders = self.active_senders()
        if flow not in self._flows or not flow.sending:
            senders += 1
        return self.total_available_rate() / max(1, senders)

    def effective_buffer(self, rate: float) -> float:
        """Usable bottleneck buffer at the given service rate, bytes.

        Real access-link queues are bounded in *time* as much as in
        bytes: a queue draining at 6 kB/s never holds 20 seconds of
        data — drop-tail (and the sender's RTO) bounds sojourn time.
        The queueing delay is therefore capped at ``max_queue_delay``.
        """
        if rate <= 0:
            return self.buffer_bytes
        return min(self.buffer_bytes, rate * self.max_queue_delay)

    def packet_loss_rate(self) -> float:
        """Current per-packet random-loss probability."""
        loss = self.loss_rate
        if self.channel is not None:
            loss = min(0.9, loss + self.channel.extra_loss())
        return loss

    @property
    def is_up(self) -> bool:
        """False when the interface is down or capacity is zero."""
        return self.interface.up and self.capacity.rate > 0

    def on_capacity_change(self, listener: Callable[[float, float], None]) -> None:
        """Subscribe to capacity transitions (time, new rate in bytes/s)."""
        self.capacity.on_change(listener)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkPath {self.name} if={self.interface.kind.value} "
            f"rtt={self.base_rtt * 1e3:.0f}ms rate={self.capacity.rate:.0f}B/s>"
        )
