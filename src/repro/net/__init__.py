"""Network substrate: interfaces, links with time-varying capacity,
WiFi contention, and end-to-end paths.

The experiments in the paper manipulate *available bandwidth over time*
(a modulated AP, interfering WiFi nodes, walking in and out of AP
range).  This package models exactly that: a :class:`NetworkPath` has a
capacity process, a base RTT, a loss model, and optionally a contended
WiFi channel; TCP flows attach to paths and ask them for their current
fair share.
"""

from repro.net.bandwidth import (
    CapacityProcess,
    ConstantCapacity,
    PiecewiseTraceCapacity,
    TwoStateMarkovCapacity,
)
from repro.net.contention import WiFiChannel
from repro.net.host import MobileDevice, Server
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath

__all__ = [
    "CapacityProcess",
    "ConstantCapacity",
    "InterfaceKind",
    "MobileDevice",
    "NetworkInterface",
    "NetworkPath",
    "PiecewiseTraceCapacity",
    "Server",
    "TwoStateMarkovCapacity",
    "WiFiChannel",
]
