"""Unit conventions and conversion helpers.

Internally the simulator uses SI-ish base units everywhere:

* time        — seconds (float)
* data        — bytes (float; fluid model, fractional bytes are fine)
* data rate   — bytes per second
* power       — watts
* energy      — joules

The paper's tables and figures, however, speak in megabits per second
(Mbps), kilobytes/megabytes, and milliwatts.  All conversions between
the two worlds go through this module so that a stray factor of 8 or
1e6 cannot hide anywhere else in the code base.
"""

from __future__ import annotations

#: Number of bytes in a kilobyte / megabyte (decimal, as used for rates).
KILOBYTE = 1_000.0
MEGABYTE = 1_000_000.0

#: Binary sizes, used for file sizes quoted by the paper (256 KB, 16 MB...).
KIB = 1024.0
MIB = 1024.0 * 1024.0

#: Bits per byte.
BITS_PER_BYTE = 8.0


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert megabits per second to bytes per second."""
    return mbps * 1e6 / BITS_PER_BYTE


def bytes_per_sec_to_mbps(rate: float) -> float:
    """Convert bytes per second to megabits per second."""
    return rate * BITS_PER_BYTE / 1e6


def kbps_to_bytes_per_sec(kbps: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return kbps * 1e3 / BITS_PER_BYTE


def milliwatts_to_watts(mw: float) -> float:
    """Convert milliwatts to watts."""
    return mw / 1e3


def watts_to_milliwatts(w: float) -> float:
    """Convert watts to milliwatts."""
    return w * 1e3


def joules_per_byte_to_joules_per_bit(jpb: float) -> float:
    """Convert joules/byte to joules/bit (Figure 13 reports J/b)."""
    return jpb / BITS_PER_BYTE


def mib(n: float) -> float:
    """``n`` mebibytes expressed in bytes (paper file sizes: 1/4/16/256 MB)."""
    return n * MIB


def kib(n: float) -> float:
    """``n`` kibibytes expressed in bytes (paper small transfers: 256 KB)."""
    return n * KIB
