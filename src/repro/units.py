"""Unit conventions and conversion helpers.

Internally the simulator uses SI-ish base units everywhere:

* time        — seconds (float)
* data        — bytes (float; fluid model, fractional bytes are fine)
* data rate   — bytes per second
* power       — watts
* energy      — joules

The paper's tables and figures, however, speak in megabits per second
(Mbps), kilobytes/megabytes, and milliwatts.  All conversions between
the two worlds go through this module so that a stray factor of 8 or
1e6 cannot hide anywhere else in the code base.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Number of bytes in a kilobyte / megabyte (decimal, as used for rates).
KILOBYTE = 1_000.0
MEGABYTE = 1_000_000.0

#: Binary sizes, used for file sizes quoted by the paper (256 KB, 16 MB...).
KIB = 1024.0
MIB = 1024.0 * 1024.0

#: Bits per byte.
BITS_PER_BYTE = 8.0


#: Declared unit signatures of every conversion helper in this module:
#: ``{function name: ((input unit, ...), output unit)}``.  The dataflow
#: tier (``repro.check.dataflow``, rule REP201) seeds its abstract
#: interpretation from this table, so these functions are the *only*
#: blessed way to move a value between unit systems — an inline
#: ``* 8 / 1e6`` elsewhere keeps its inferred input unit and is flagged
#: when it lands in a name that claims the converted one.  Unit symbols
#: are the identifier-suffix spellings (``mbps``, ``bytes_per_sec``,
#: ``w``, ``mw``, ``j``, ``j_per_byte``...); ``scalar`` marks a bare
#: count.
UNIT_SIGNATURES: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "mbps_to_bytes_per_sec": (("mbps",), "bytes_per_sec"),
    "bytes_per_sec_to_mbps": (("bytes_per_sec",), "mbps"),
    "kbps_to_bytes_per_sec": (("kbps",), "bytes_per_sec"),
    "milliwatts_to_watts": (("mw",), "w"),
    "watts_to_milliwatts": (("w",), "mw"),
    "joules_per_byte_to_joules_per_bit": (("j_per_byte",), "j_per_bit"),
    "ms_to_s": (("ms",), "s"),
    "s_to_ms": (("s",), "ms"),
    "mib": (("scalar",), "bytes"),
    "kib": (("scalar",), "bytes"),
}


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert megabits per second to bytes per second."""
    return mbps * 1e6 / BITS_PER_BYTE


def bytes_per_sec_to_mbps(rate: float) -> float:
    """Convert bytes per second to megabits per second."""
    return rate * BITS_PER_BYTE / 1e6


def kbps_to_bytes_per_sec(kbps: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return kbps * 1e3 / BITS_PER_BYTE


def milliwatts_to_watts(mw: float) -> float:
    """Convert milliwatts to watts."""
    return mw / 1e3


def watts_to_milliwatts(w: float) -> float:
    """Convert watts to milliwatts."""
    return w * 1e3


def joules_per_byte_to_joules_per_bit(jpb: float) -> float:
    """Convert joules/byte to joules/bit (Figure 13 reports J/b)."""
    return jpb / BITS_PER_BYTE


def ms_to_s(ms: float) -> float:
    """Convert milliseconds to seconds (RTTs are quoted in ms)."""
    return ms / 1e3


def s_to_ms(s: float) -> float:
    """Convert seconds to milliseconds."""
    return s * 1e3


def mib(n: float) -> float:
    """``n`` mebibytes expressed in bytes (paper file sizes: 1/4/16/256 MB)."""
    return n * MIB


def kib(n: float) -> float:
    """``n`` kibibytes expressed in bytes (paper small transfers: 256 KB)."""
    return n * KIB
