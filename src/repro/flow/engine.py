"""The vectorized fleet engine: one epoch loop over numpy arrays.

:class:`FleetEngine` advances every session in a :class:`FleetState`
through fixed epochs of the control plane's decision interval (0.25 s by
default).  Each :meth:`step` performs, across the whole fleet at once:

1. session starts (WiFi activation energy, sampling windows);
2. RRC state-machine transitions (promotion, hold, tail, demotion);
3. per-lane rates from the analytic models under capacity, Mathis and
   proportional-fair cell-share bounds;
4. byte delivery with sub-epoch completion interpolation;
5. two-phase energy accrual (transfer power until the completion
   instant, idle/tail power for the remainder, baseline throughout,
   overlap saving when both radios are hot) plus the post-completion
   drain window the fluid engine also accounts;
6. Holt-Winters throughput sampling at each lane's δ;
7. delayed cellular establishment (κ/τ triggers, §3.5);
8. vectorized EIB + hysteresis + veto + φ-gate decisions (§3.3–3.4).

The semantics deliberately mirror the scalar fluid control plane — the
CHK5xx flow-agreement report quantifies how closely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs as _obs
from repro.core.eib import cached_eib
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.energy.power import Direction
from repro.errors import ConfigurationError, SimulationError
from repro.flow.contention import cell_share_bytes_per_sec
from repro.flow.models import (
    EibTable,
    epoch_rate_bytes_per_sec,
    holt_winters_forecast_mbps,
    holt_winters_update,
)
from repro.flow.state import (
    DEC_BOTH,
    DEC_CELL_ONLY,
    DEC_WIFI_ONLY,
    PROTO_EMPTCP,
    RRC_ACTIVE,
    RRC_IDLE,
    RRC_PROMOTING,
    RRC_TAIL,
    PROTOCOL_CODES,
    FleetState,
)

_CODE_TO_PROTOCOL = {code: name for name, code in PROTOCOL_CODES.items()}
from repro.net.interface import InterfaceKind
from repro.units import BITS_PER_BYTE

_EPS = 1e-9

#: Mbps per byte-per-second (vectorized unit conversion).
_MBPS_PER_BYTES_PER_SEC = BITS_PER_BYTE / 1e6

#: Idle margin used by DeviceProfile.total_power to call a radio "hot".
_HOT_MARGIN_W = 1e-12


class FleetEngine:
    """Advance a whole fleet of sessions in vectorized epochs."""

    def __init__(
        self,
        state: FleetState,
        profile: DeviceProfile = GALAXY_S3,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
        direction: Direction = Direction.DOWN,
        epoch_s: Optional[float] = None,
        shared_cell_capacity_bytes_per_sec: Optional[np.ndarray] = None,
        obs_epoch_every: int = 4,
        obs_session_limit: int = 32,
    ):
        if not cell_kind.is_cellular:
            raise ConfigurationError(f"cell_kind must be cellular, got {cell_kind}")
        if cell_kind not in profile.interfaces:
            raise ConfigurationError(
                f"{profile.name} has no {cell_kind} interface"
            )
        self.state = state
        self.profile = profile
        self.cell_kind = cell_kind
        self.direction = direction
        self.epoch_s = float(epoch_s or state.config.decision_interval)
        if self.epoch_s <= 0:
            raise ConfigurationError("epoch_s must be positive")
        self.shared_cell_capacity_bytes_per_sec = (
            None
            if shared_cell_capacity_bytes_per_sec is None
            else np.asarray(shared_cell_capacity_bytes_per_sec, dtype=float)
        )
        self.obs_epoch_every = max(1, int(obs_epoch_every))
        self.obs_session_limit = int(obs_session_limit)

        self.eib_table = EibTable(cached_eib(profile, cell_kind, direction))
        wifi_if = profile.interfaces[InterfaceKind.WIFI]
        cell_if = profile.interfaces[cell_kind]
        self._wifi_base_w = wifi_if.base_w
        self._wifi_slope_w = wifi_if.slope(direction)
        self._wifi_idle_w = wifi_if.idle_w
        self._cell_base_w = cell_if.base_w
        self._cell_slope_w = cell_if.slope(direction)
        self._cell_idle_w = cell_if.idle_w
        self._rrc = profile.rrc[cell_kind]
        #: Post-completion accounting window, matching the fluid runner:
        #: worst-case promotion + hold + tail plus one settling second.
        self.drain_s = (
            self._rrc.promotion_time
            + self._rrc.active_hold
            + self._rrc.tail_time
            + 1.0
        )

        self._epoch = 0
        #: Total session-epochs advanced (the flow tier's "events").
        self.session_steps = 0
        self._tracer = _obs.tracer_or_none()

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Sim time at the last completed epoch boundary."""
        return self._epoch * self.epoch_s

    @property
    def epochs(self) -> int:
        return self._epoch

    def all_closed(self) -> bool:
        """True once every session completed and drained its energy tail."""
        st = self.state
        return bool(np.all(st.done) and np.all(st.closed_t_s <= self.now + _EPS))

    def wifi_forecast_mbps(self) -> np.ndarray:
        st = self.state
        return holt_winters_forecast_mbps(
            st.wifi_level_mbps, st.wifi_trend_mbps, st.wifi_hw_ready,
            st.config.initial_bandwidth_mbps,
        )

    def cell_forecast_mbps(self) -> np.ndarray:
        st = self.state
        return holt_winters_forecast_mbps(
            st.cell_level_mbps, st.cell_trend_mbps, st.cell_hw_ready,
            st.config.initial_bandwidth_mbps,
        )

    # ------------------------------------------------------------------

    def run_until(self, t_end_s: float, max_epochs: Optional[int] = None) -> None:
        """Step until sim time reaches ``t_end_s`` or the fleet closes."""
        budget = max_epochs if max_epochs is not None else int(1e9)
        while self.now < t_end_s - _EPS and not self.all_closed():
            if budget <= 0:
                raise SimulationError(
                    f"fleet engine exceeded {max_epochs} epochs before "
                    f"reaching t={t_end_s}"
                )
            self.step()
            budget -= 1

    def step(self) -> None:
        """Advance the whole fleet by one epoch."""
        st = self.state
        dt = self.epoch_s
        t0 = self._epoch * dt
        t1 = t0 + dt
        self._epoch += 1

        self._start_sessions(t0)
        running = st.started & ~st.done
        self.session_steps += int(np.count_nonzero(running))

        cell_can_send = self._rrc_transitions(t0, t1, running)
        wifi_send = running & st.wifi_established & ~st.wifi_suspended
        wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec = self._lane_rates(
            t0, t1, wifi_send, cell_can_send
        )
        frac, completing = self._deliver(
            t0, dt, running, wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec
        )
        self._accrue_energy(
            t0, dt, frac, completing,
            wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec,
        )
        self._sample_predictors(t1, running)
        wifi_fc = self.wifi_forecast_mbps()
        cell_fc = self.cell_forecast_mbps()
        cell_only_thr, wifi_only_thr = self.eib_table.thresholds_mbps(cell_fc)
        self._delayed_establishment(t1, running, wifi_fc, wifi_only_thr)
        self._decide(t1, running, wifi_fc, cell_only_thr, wifi_only_thr)
        self._emit_obs(
            t1, running, completing,
            wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec,
        )

    # ------------------------------------------------------------------

    def _start_sessions(self, t0: float) -> None:
        st = self.state
        starting = ~st.started & (st.start_s <= t0 + _EPS)
        if not starting.any():
            return
        st.started[starting] = True
        # WiFi is the primary subflow: established after one handshake
        # RTT, which is also where its slow-start ramp begins.
        st.wifi_established[starting] = True
        st.wifi_ramp_origin_s[starting] = (
            st.start_s[starting] + st.wifi_rtt_s[starting]
        )
        st.wifi_sample_from_s[starting] = st.start_s[starting]
        st.wifi_sample_due_s[starting] = (
            st.start_s[starting] + st.wifi_delta_s[starting]
        )
        st.energy_j[starting] += self.profile.wifi_activation_j
        # Plain MPTCP opens the cellular subflow immediately.
        auto = starting & st.cell_auto
        st.cell_established[auto] = True
        st.cell_established_t_s[auto] = st.start_s[auto]

    def _rrc_transitions(
        self, t0: float, t1: float, running: np.ndarray
    ) -> np.ndarray:
        """Advance every session's RRC machine; return who may send on
        cellular this epoch."""
        st = self.state
        rrc, until = st.rrc, st.rrc_until_s
        want_cell = running & st.cell_established & ~st.cell_suspended
        # Demotions (checked against the timer armed in earlier epochs).
        tail_done = (rrc == RRC_TAIL) & (until <= t0 + _EPS)
        rrc[tail_done] = RRC_IDLE
        until[tail_done] = np.inf
        hold_done = (rrc == RRC_ACTIVE) & ~want_cell & (until <= t0 + _EPS)
        rrc[hold_done] = RRC_TAIL
        until[hold_done] = until[hold_done] + self._rrc.tail_time
        # Promotions completing: the lane may now ramp (first time only),
        # and its throughput sampler starts observing.
        prom_done = (rrc == RRC_PROMOTING) & (until <= t0 + _EPS)
        first = prom_done & np.isinf(st.cell_ramp_origin_s)
        st.cell_ramp_origin_s[first] = until[first] + st.cell_rtt_s[first]
        st.cell_sample_from_s[first] = until[first]
        st.cell_sample_from_bytes[first] = st.cell_delivered_bytes[first]
        st.cell_sample_due_s[first] = until[first] + st.cell_delta_s[first]
        rrc[prom_done] = RRC_ACTIVE
        until[prom_done] = t1 + self._rrc.active_hold
        # Activity-driven transitions.
        promote = want_cell & (rrc == RRC_IDLE)
        rrc[promote] = RRC_PROMOTING
        until[promote] = t0 + self._rrc.promotion_time
        st.rrc_promotions[promote] += 1
        revive = want_cell & (rrc == RRC_TAIL)
        rrc[revive] = RRC_ACTIVE
        rearm = want_cell & (rrc == RRC_ACTIVE)
        until[rearm] = t1 + self._rrc.active_hold
        return want_cell & (rrc == RRC_ACTIVE)

    def _lane_rates(self, t0, t1, wifi_send, cell_send):
        st = self.state
        cell_cap = st.cell_capacity_bytes_per_sec
        if self.shared_cell_capacity_bytes_per_sec is not None:
            share = cell_share_bytes_per_sec(
                st.cell_id,
                cell_send,
                self.shared_cell_capacity_bytes_per_sec,
                len(self.shared_cell_capacity_bytes_per_sec),
            )
            cell_cap = np.minimum(cell_cap, share)
        wifi_rate_bytes_per_sec = epoch_rate_bytes_per_sec(
            t0, t1, st.wifi_ramp_origin_s, st.wifi_rtt_s, st.wifi_loss,
            st.wifi_capacity_bytes_per_sec, wifi_send,
        )
        cell_rate_bytes_per_sec = epoch_rate_bytes_per_sec(
            t0, t1, st.cell_ramp_origin_s, st.cell_rtt_s, st.cell_loss,
            cell_cap, cell_send,
        )
        return wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec

    def _deliver(
        self, t0, dt, running, wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec
    ):
        st = self.state
        total_rate_bytes_per_sec = (
            wifi_rate_bytes_per_sec + cell_rate_bytes_per_sec
        )
        epoch_bytes = total_rate_bytes_per_sec * dt
        remaining = st.download_bytes - st.delivered_bytes
        frac = np.ones(st.n)
        completing = running & (
            (remaining <= _EPS)
            | ((total_rate_bytes_per_sec > 0.0) & (remaining <= epoch_bytes))
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            part = np.where(
                total_rate_bytes_per_sec > 0.0,
                remaining / np.maximum(epoch_bytes, _EPS),
                0.0,
            )
        frac[completing] = np.clip(part[completing], 0.0, 1.0)
        st.wifi_delivered_bytes += wifi_rate_bytes_per_sec * frac * dt
        st.cell_delivered_bytes += cell_rate_bytes_per_sec * frac * dt
        st.done_t_s[completing] = t0 + frac[completing] * dt
        st.done[completing] = True
        st.closed_t_s[completing] = st.done_t_s[completing] + self.drain_s
        return frac, completing

    def _accrue_energy(
        self, t0, dt, frac, completing,
        wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec,
    ):
        st = self.state
        wifi_power_w = np.where(
            wifi_rate_bytes_per_sec > 0.0,
            self._wifi_base_w
            + self._wifi_slope_w * wifi_rate_bytes_per_sec * _MBPS_PER_BYTES_PER_SEC,
            self._wifi_idle_w,
        )
        cell_idle_power_w = np.select(
            [st.rrc == RRC_PROMOTING, (st.rrc == RRC_ACTIVE) | (st.rrc == RRC_TAIL)],
            [self._rrc.promotion_power_w, self._rrc.tail_power_w],
            self._cell_idle_w,
        )
        cell_power_w = np.where(
            cell_rate_bytes_per_sec > 0.0,
            self._cell_base_w
            + self._cell_slope_w * cell_rate_bytes_per_sec * _MBPS_PER_BYTES_PER_SEC,
            cell_idle_power_w,
        )
        hot = (
            (wifi_power_w > self._wifi_idle_w + _HOT_MARGIN_W).astype(np.int8)
            + (cell_power_w > self._cell_idle_w + _HOT_MARGIN_W).astype(np.int8)
        )
        overlap_w = np.where(hot >= 2, self.profile.overlap_saving_w, 0.0)
        transfer_power_w = (
            np.maximum(wifi_power_w + cell_power_w - overlap_w, 0.0)
            + self.profile.baseline_w
        )
        # Post-completion power for the rest of the epoch: both radios
        # quiescent, cellular still in whatever RRC state it holds.
        settle_power_w = (
            np.maximum(self._wifi_idle_w + cell_idle_power_w, 0.0)
            + self.profile.baseline_w
        )
        alive_s = np.clip(st.closed_t_s - t0, 0.0, dt)
        alive_s[~st.started] = 0.0
        transfer_s = np.minimum(frac * dt, alive_s)
        settle_s = np.clip(alive_s - frac * dt, 0.0, dt)
        st.energy_j += transfer_power_w * transfer_s
        st.energy_at_completion_j[completing] = st.energy_j[completing]
        st.energy_j += settle_power_w * settle_s

    def _sample_predictors(self, t1: float, running: np.ndarray) -> None:
        st = self.state
        cfg = st.config
        emptcp = st.protocol == PROTO_EMPTCP
        for (established, suspended, due_s, from_s, from_bytes, delivered,
             level, trend, ready, count, delta_s) in (
            (st.wifi_established, st.wifi_suspended, st.wifi_sample_due_s,
             st.wifi_sample_from_s, st.wifi_sample_from_bytes,
             st.wifi_delivered_bytes, st.wifi_level_mbps, st.wifi_trend_mbps,
             st.wifi_hw_ready, st.wifi_sample_count, st.wifi_delta_s),
            (st.cell_established, st.cell_suspended, st.cell_sample_due_s,
             st.cell_sample_from_s, st.cell_sample_from_bytes,
             st.cell_delivered_bytes, st.cell_level_mbps, st.cell_trend_mbps,
             st.cell_hw_ready, st.cell_sample_count, st.cell_delta_s),
        ):
            due = (
                emptcp & running & established & ~suspended
                & (due_s <= t1 + _EPS)
            )
            if not due.any():
                continue
            span_s = np.maximum(t1 - from_s, _EPS)
            sample_mbps = (
                (delivered - from_bytes) / span_s * _MBPS_PER_BYTES_PER_SEC
            )
            holt_winters_update(
                sample_mbps, level, trend, ready, due, cfg.hw_alpha, cfg.hw_beta
            )
            count[due] += 1
            from_s[due] = t1
            from_bytes[due] = delivered[due]
            due_s[due] = t1 + delta_s[due]

    def _delayed_establishment(
        self, t1, running, wifi_fc, wifi_only_thr
    ) -> None:
        st = self.state
        cfg = st.config
        pending = st.emptcp & running & ~st.cell_established
        if not pending.any():
            return
        kappa_hit = st.wifi_delivered_bytes >= cfg.kappa_bytes
        tau_fired = st.tau_deadline_s <= t1 + _EPS
        trigger = pending & ((kappa_hit & ~st.kappa_checked) | tau_fired)
        if not trigger.any():
            return
        st.kappa_checked[trigger & kappa_hit] = True
        # §3.5: postpone when WiFi hasn't produced enough samples yet, or
        # when the predictor says WiFi alone beats using both paths.
        few = st.wifi_sample_count < max(1, cfg.required_samples // 2)
        wifi_preferred = wifi_fc >= wifi_only_thr
        postpone = trigger & (few | wifi_preferred)
        establish = trigger & ~postpone
        # Only a τ expiry re-arms the timer (a κ postponement leaves the
        # original τ deadline standing), mirroring control.delay.
        rearm = postpone & tau_fired
        st.tau_deadline_s[rearm] = t1 + cfg.tau_seconds
        st.postponements[postpone] += 1
        st.cell_established[establish] = True
        st.cell_established_t_s[establish] = t1

    def _decide(
        self, t1, running, wifi_fc, cell_only_thr, wifi_only_thr
    ) -> None:
        st = self.state
        cfg = st.config
        mask = st.emptcp & running
        if mask.any():
            sf = cfg.safety_factor
            cur = st.decision
            new = cur.copy()
            from_both = mask & (cur == DEC_BOTH)
            new = np.where(
                from_both & (wifi_fc >= wifi_only_thr * (1 + sf)),
                DEC_WIFI_ONLY, new)
            new = np.where(
                from_both & (wifi_fc < cell_only_thr * (1 - sf)),
                DEC_CELL_ONLY, new)
            from_wifi = mask & (cur == DEC_WIFI_ONLY)
            new = np.where(
                from_wifi & (wifi_fc < cell_only_thr * (1 - sf)),
                DEC_CELL_ONLY, new)
            new = np.where(
                from_wifi & (wifi_fc >= cell_only_thr * (1 - sf))
                & (wifi_fc < wifi_only_thr * (1 - sf)),
                DEC_BOTH, new)
            from_cell = mask & (cur == DEC_CELL_ONLY)
            new = np.where(
                from_cell & (wifi_fc >= wifi_only_thr * (1 + sf)),
                DEC_WIFI_ONLY, new)
            new = np.where(
                from_cell & (wifi_fc < wifi_only_thr * (1 + sf))
                & (wifi_fc >= cell_only_thr * (1 + sf)),
                DEC_BOTH, new)
            new = new.astype(np.int8)
            if not cfg.allow_cellular_only:
                new[mask & (new == DEC_CELL_ONLY)] = DEC_BOTH
            # φ-gates: never exclude a path on fewer than φ samples.
            phi = cfg.required_samples
            gate_wifi_only = (
                mask & (new == DEC_WIFI_ONLY)
                & (st.cell_sample_count > 0) & (st.cell_sample_count < phi)
            )
            new[gate_wifi_only] = DEC_BOTH
            gate_cell_only = (
                mask & (new == DEC_CELL_ONLY) & (st.wifi_sample_count < phi)
            )
            new[gate_cell_only] = DEC_BOTH
            changed = mask & (new != cur)
            st.decision_switches[changed] += 1
            st.decision[mask] = new[mask]
        # Apply decisions as lane suspensions (eMPTCP only).
        want_wifi_susp = st.emptcp & (st.decision == DEC_CELL_ONLY)
        want_cell_susp = (
            st.emptcp & (st.decision == DEC_WIFI_ONLY) & st.cell_established
        )
        self._apply_suspension(
            t1, want_wifi_susp, st.wifi_suspended, st.wifi_suspend_count,
            st.wifi_sample_from_s, st.wifi_sample_from_bytes,
            st.wifi_sample_due_s, st.wifi_delivered_bytes, st.wifi_delta_s,
        )
        self._apply_suspension(
            t1, want_cell_susp, st.cell_suspended, st.cell_suspend_count,
            st.cell_sample_from_s, st.cell_sample_from_bytes,
            st.cell_sample_due_s, st.cell_delivered_bytes, st.cell_delta_s,
        )

    @staticmethod
    def _apply_suspension(
        t1, want, suspended, count, from_s, from_bytes, due_s, delivered,
        delta_s,
    ) -> None:
        newly = want & ~suspended
        count[newly] += 1
        resume = suspended & ~want
        # Restart the sampling window so the first post-resume sample
        # does not average over the suspension gap.
        from_s[resume] = t1
        from_bytes[resume] = delivered[resume]
        due_s[resume] = t1 + delta_s[resume]
        suspended[:] = want

    def _emit_obs(
        self, t1, running, completing,
        wifi_rate_bytes_per_sec, cell_rate_bytes_per_sec,
    ) -> None:
        if self._tracer is None:
            return
        st = self.state
        if self._epoch % self.obs_epoch_every == 0:
            total_bytes_per_sec = float(
                wifi_rate_bytes_per_sec.sum() + cell_rate_bytes_per_sec.sum()
            )
            self._tracer.emit(
                "fleet.epoch",
                t=t1,
                sessions=int(st.n),
                active=int(np.count_nonzero(running)),
                completed=int(np.count_nonzero(st.done)),
                energy_j=float(st.energy_j.sum()),
                goodput_mbps=total_bytes_per_sec * _MBPS_PER_BYTES_PER_SEC,
            )
        if self.obs_session_limit > 0 and completing.any():
            sampled = np.nonzero(completing)[0]
            for idx in sampled[sampled < self.obs_session_limit]:
                i = int(idx)
                self._tracer.emit(
                    "fleet.session",
                    t=float(st.done_t_s[i]),
                    conn=f"s{i}",
                    protocol=_CODE_TO_PROTOCOL[int(st.protocol[i])],
                    bytes=float(st.delivered_bytes[i]),
                    energy_j=float(st.energy_at_completion_j[i]),
                    completed=True,
                )


__all__ = ["FleetEngine"]
