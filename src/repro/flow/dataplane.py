"""Per-session views of the fleet arrays satisfying the PR 4 seam.

The flow tier advances its control state vectorized — it does not call
the scalar controller per session.  :class:`FlowDataPlane` exposes one
session of a :class:`~repro.flow.state.FleetState` through the exact
:class:`~repro.control.port.DataPlanePort` /
:class:`~repro.control.port.SubflowLike` protocols, in both directions:

* reads (``established``, ``bytes_delivered``, ``completed``…) come
  straight from the fleet arrays, so external tooling and tests can
  inspect any session with the same interface they use against the
  fluid and packet engines;
* commands (``join_cellular``, ``set_subflow_usage``) write the arrays,
  so the scalar control plane *can* drive a flow session — the batch
  control path is an optimisation, not a different semantic.
"""

from __future__ import annotations

from typing import List, Optional

from repro.control.port import DeliveryListener
from repro.errors import ConfigurationError
from repro.flow.state import FleetState
from repro.net.interface import InterfaceKind


class FlowSubflowView:
    """One lane of one session, shaped like a fluid Subflow."""

    def __init__(self, state: FleetState, index: int, kind: InterfaceKind):
        self._state = state
        self._index = index
        self._kind = kind
        self._wifi = kind is InterfaceKind.WIFI
        self.name = f"s{index}-{kind.value}"

    @property
    def interface_kind(self) -> InterfaceKind:
        return self._kind

    @property
    def established(self) -> bool:
        st, i = self._state, self._index
        return bool(st.wifi_established[i] if self._wifi else st.cell_established[i])

    @property
    def suspended(self) -> bool:
        st, i = self._state, self._index
        return bool(st.wifi_suspended[i] if self._wifi else st.cell_suspended[i])

    @property
    def sending(self) -> bool:
        st, i = self._state, self._index
        if st.done[i] or not st.started[i]:
            return False
        return self.established and not self.suspended

    @property
    def bytes_delivered(self) -> float:
        st, i = self._state, self._index
        return float(
            st.wifi_delivered_bytes[i] if self._wifi else st.cell_delivered_bytes[i]
        )

    @property
    def handshake_rtt(self) -> Optional[float]:
        if not self.established:
            return None
        st, i = self._state, self._index
        return float(st.wifi_rtt_s[i] if self._wifi else st.cell_rtt_s[i])


class FlowDataPlane:
    """DataPlanePort over one session of the vectorized fleet."""

    def __init__(self, state: FleetState, index: int):
        if not 0 <= index < state.n:
            raise ConfigurationError(
                f"session index {index} out of range for fleet of {state.n}"
            )
        self._state = state
        self._index = index
        self._wifi = FlowSubflowView(state, index, InterfaceKind.WIFI)
        self._cell = FlowSubflowView(state, index, InterfaceKind.LTE)
        self._listeners: List[DeliveryListener] = []

    # -- DelayPort ------------------------------------------------------

    def join_cellular(self) -> FlowSubflowView:
        st, i = self._state, self._index
        if not st.cell_allowed[i]:
            raise ConfigurationError(
                f"session {i} runs single-path TCP; no cellular lane to join"
            )
        st.cell_established[i] = True
        return self._cell

    def on_delivery(self, listener: DeliveryListener) -> None:
        # The batch engine does not call back per delivery event (that
        # is the point of the flow tier); listeners are retained so a
        # scalar driver can poll-and-notify at epoch granularity.
        self._listeners.append(listener)

    @property
    def delivery_listeners(self) -> List[DeliveryListener]:
        return list(self._listeners)

    @property
    def is_idle(self) -> bool:
        st, i = self._state, self._index
        return bool(st.done[i]) or not bool(st.started[i])

    @property
    def source_exhausted(self) -> bool:
        return bool(self._state.done[self._index])

    @property
    def completed(self) -> bool:
        return bool(self._state.done[self._index])

    # -- DataPlanePort --------------------------------------------------

    def subflow(self, kind: InterfaceKind) -> Optional[FlowSubflowView]:
        if kind is InterfaceKind.WIFI:
            return self._wifi
        if not self._cell.established:
            return None
        return self._cell

    def set_subflow_usage(self, kind: InterfaceKind, in_use: bool) -> None:
        st, i = self._state, self._index
        if kind is InterfaceKind.WIFI:
            suspended, count = st.wifi_suspended, st.wifi_suspend_count
        else:
            suspended, count = st.cell_suspended, st.cell_suspend_count
        if bool(suspended[i]) == (not in_use):
            return
        if not in_use:
            count[i] += 1
        suspended[i] = not in_use


__all__ = ["FlowDataPlane", "FlowSubflowView"]
