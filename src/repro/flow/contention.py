"""Shared-cell LTE contention for fleet runs.

The paper measures one device against an uncontended eNodeB; the fleet
layer asks what happens when many eMPTCP users share a cell.  The model
here is proportional-fair in its long-run steady state: every session
actively sending on a cell receives an equal share of that cell's
capacity, and a session's effective cellular capacity is the minimum of
its own radio-limited rate and its share.

This is deliberately a scheduling *abstraction* — there are no per-TTI
queues — but it preserves the first-order coupling the population
questions need: as more users establish their cellular subflow, each
one's share (and hence the EIB's view of the cellular path) degrades.
"""

from __future__ import annotations

import numpy as np


def cell_share_bytes_per_sec(
    cell_id: np.ndarray,
    sending: np.ndarray,
    cell_capacity_bytes_per_sec: np.ndarray,
    n_cells: int,
) -> np.ndarray:
    """Equal-share cell capacity for every session, bytes/second.

    ``cell_id`` maps sessions to cells (-1 = private/uncontended, gets
    ``inf`` so the session's own link capacity binds); ``sending`` marks
    the sessions actively transmitting on cellular this epoch;
    ``cell_capacity_bytes_per_sec`` is indexed by cell.  Idle cells
    divide by one, so a newly joining sender sees the full cell.
    """
    share = np.full(cell_id.shape, np.inf)
    if n_cells <= 0:
        return share
    contended = sending & (cell_id >= 0)
    counts = np.bincount(cell_id[contended], minlength=n_cells)
    per_cell = cell_capacity_bytes_per_sec / np.maximum(counts, 1)
    on_cell = cell_id >= 0
    share[on_cell] = per_cell[cell_id[on_cell]]
    return share


__all__ = ["cell_share_bytes_per_sec"]
