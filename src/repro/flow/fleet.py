"""Population-scale fleet experiments (the ROADMAP's north star).

A :class:`FleetSpec` describes a *population*: how many sessions, the
per-user scenario/workload mix (:class:`FleetScenario` entries with
weights), how many shared LTE cells the population is spread over and
each cell's capacity, the device profile, and the measurement window.
:func:`run_fleet` materializes it — deterministically from the seed —
into a :class:`~repro.flow.state.FleetState`, advances it with the
vectorized :class:`~repro.flow.engine.FleetEngine`, and summarizes into
a JSON-ready :class:`FleetResult`.

Everything here is sim-side and deterministic; wall-clock measurement
(sessions stepped per second) belongs to the caller (CLI / bench).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import EMPTCPConfig
from repro.energy.device import DEVICES
from repro.errors import ConfigurationError
from repro.flow.engine import FleetEngine
from repro.flow.state import (
    PROTOCOL_CODES,
    FleetState,
    SessionParams,
)
from repro.net.interface import InterfaceKind
from repro.units import mbps_to_bytes_per_sec, mib


@dataclass(frozen=True)
class FleetScenario:
    """One user-population stratum: a protocol plus its radio situation.

    ``download_mb`` is the per-session transfer size in MiB; ``None``
    means an open-ended session that runs for the whole window (a
    streaming stand-in).
    """

    name: str
    protocol: str = "emptcp"
    weight: float = 1.0
    wifi_mbps: float = 12.0
    cell_mbps: float = 10.0
    wifi_rtt_s: float = 0.050
    cell_rtt_s: float = 0.070
    wifi_loss: float = 0.0
    cell_loss: float = 0.0
    download_mb: Optional[float] = 4.0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_CODES:
            raise ConfigurationError(
                f"fleet stratum {self.name!r}: unknown protocol "
                f"{self.protocol!r}; choose from {sorted(PROTOCOL_CODES)}"
            )
        if self.weight <= 0:
            raise ConfigurationError(
                f"fleet stratum {self.name!r}: weight must be positive"
            )
        if self.download_mb is not None and self.download_mb <= 0:
            raise ConfigurationError(
                f"fleet stratum {self.name!r}: download_mb must be positive"
            )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


#: A default metro-area-flavoured population: mostly eMPTCP users split
#: between good and poor WiFi, with MPTCP and single-path TCP cohorts
#: as baselines (the paper's §4.2 operating points).
DEFAULT_MIX: Tuple[FleetScenario, ...] = (
    FleetScenario("good-wifi-emptcp", "emptcp", weight=0.40,
                  wifi_mbps=12.0, cell_mbps=10.0, download_mb=4.0),
    FleetScenario("bad-wifi-emptcp", "emptcp", weight=0.30,
                  wifi_mbps=0.8, cell_mbps=10.0, download_mb=4.0),
    FleetScenario("mptcp-baseline", "mptcp", weight=0.15,
                  wifi_mbps=12.0, cell_mbps=10.0, download_mb=4.0),
    FleetScenario("tcp-wifi-baseline", "tcp-wifi", weight=0.15,
                  wifi_mbps=12.0, cell_mbps=10.0, download_mb=4.0),
)


@dataclass(frozen=True)
class FleetSpec:
    """A reproducible population-scale experiment."""

    sessions: int = 1_000
    duration_s: float = 60.0
    mix: Tuple[FleetScenario, ...] = DEFAULT_MIX
    #: Number of shared LTE cells the population is scattered over; 0
    #: disables contention (every session gets a private cell).
    cells: int = 25
    cell_capacity_mbps: float = 150.0
    device: str = "galaxy-s3"
    cell_kind: str = "lte"
    seed: int = 0
    #: Sessions start uniformly over this window (staggered arrivals).
    arrival_window_s: float = 10.0
    #: Epoch length; defaults to the control plane's decision interval.
    epoch_s: Optional[float] = None
    config: EMPTCPConfig = field(default_factory=EMPTCPConfig)

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ConfigurationError("sessions must be >= 1")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if not self.mix:
            raise ConfigurationError("mix must contain at least one stratum")
        if self.cells < 0:
            raise ConfigurationError("cells must be >= 0")
        if self.cell_capacity_mbps <= 0:
            raise ConfigurationError("cell_capacity_mbps must be positive")
        if self.device not in DEVICES:
            raise ConfigurationError(
                f"unknown device {self.device!r}; choose from {sorted(DEVICES)}"
            )
        if self.arrival_window_s < 0:
            raise ConfigurationError("arrival_window_s must be >= 0")
        kind = InterfaceKind(self.cell_kind)
        if not kind.is_cellular:
            raise ConfigurationError("cell_kind must be cellular")

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["mix"] = [s.to_dict() for s in self.mix]
        out["config"] = dataclasses.asdict(self.config)
        return out

    def content_hash(self) -> str:
        """Stable identity of this spec (cache keys, bench labels)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass
class FleetResult:
    """Aggregates of one fleet run (JSON-ready via :meth:`to_dict`)."""

    spec_hash: str
    sessions: int
    duration_s: float
    sim_t_end_s: float
    epochs: int
    #: Total session-epochs advanced — the flow tier's event count.
    session_steps: int
    completed: int
    bytes_total: float
    energy_total_j: float
    #: Aggregate delivered goodput over the window, Mbps.
    goodput_mbps: float
    per_stratum: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "spec_hash": self.spec_hash,
            "sessions": self.sessions,
            "duration_s": self.duration_s,
            "sim_t_end_s": self.sim_t_end_s,
            "epochs": self.epochs,
            "session_steps": self.session_steps,
            "completed": self.completed,
            "bytes_total": self.bytes_total,
            "energy_total_j": self.energy_total_j,
            "goodput_mbps": self.goodput_mbps,
            "per_stratum": {k: dict(v) for k, v in self.per_stratum.items()},
        }


def build_fleet(spec: FleetSpec) -> Tuple[FleetState, FleetEngine, np.ndarray]:
    """Materialize a spec into state + engine (+ stratum assignment).

    All randomness (stratum assignment, cell placement, arrival times)
    comes from one seeded generator, so the same spec always builds the
    same fleet.
    """
    rng = np.random.default_rng(spec.seed)
    weights = np.array([s.weight for s in spec.mix], dtype=float)
    weights = weights / weights.sum()
    assignment = rng.choice(len(spec.mix), size=spec.sessions, p=weights)
    cell_ids = (
        rng.integers(0, spec.cells, size=spec.sessions)
        if spec.cells > 0
        else np.full(spec.sessions, -1, dtype=np.int64)
    )
    epoch_s = spec.epoch_s or spec.config.decision_interval
    arrivals = rng.uniform(0.0, spec.arrival_window_s, size=spec.sessions)
    # Quantize arrivals to the epoch grid the engine steps on.
    arrival_epochs = np.floor(arrivals / epoch_s).astype(np.int64)

    params: List[SessionParams] = []
    for i in range(spec.sessions):
        stratum = spec.mix[int(assignment[i])]
        params.append(
            SessionParams(
                protocol=stratum.protocol,
                wifi_capacity_bytes_per_sec=mbps_to_bytes_per_sec(
                    stratum.wifi_mbps),
                cell_capacity_bytes_per_sec=mbps_to_bytes_per_sec(
                    stratum.cell_mbps),
                wifi_rtt_s=stratum.wifi_rtt_s,
                cell_rtt_s=stratum.cell_rtt_s,
                wifi_loss=stratum.wifi_loss,
                cell_loss=stratum.cell_loss,
                download_bytes=(
                    mib(stratum.download_mb)
                    if stratum.download_mb is not None
                    else float("inf")
                ),
                start_s=float(arrival_epochs[i]) * epoch_s,
                cell_id=int(cell_ids[i]),
            )
        )
    state = FleetState(params, spec.config)
    shared = (
        np.full(spec.cells, mbps_to_bytes_per_sec(spec.cell_capacity_mbps))
        if spec.cells > 0
        else None
    )
    engine = FleetEngine(
        state,
        profile=DEVICES[spec.device],
        cell_kind=InterfaceKind(spec.cell_kind),
        epoch_s=epoch_s,
        shared_cell_capacity_bytes_per_sec=shared,
    )
    return state, engine, assignment


def run_fleet(spec: FleetSpec) -> FleetResult:
    """Build and run one fleet to its measurement horizon."""
    state, engine, assignment = build_fleet(spec)
    max_epochs = int(np.ceil(spec.duration_s / engine.epoch_s)) + 8
    engine.run_until(spec.duration_s, max_epochs=max_epochs)
    return summarize_fleet(spec, state, engine, assignment)


def summarize_fleet(
    spec: FleetSpec,
    state: FleetState,
    engine: FleetEngine,
    assignment: np.ndarray,
) -> FleetResult:
    """Aggregate a finished (or cut) fleet run into a result."""
    per_stratum: Dict[str, Dict[str, float]] = {}
    for idx, stratum in enumerate(spec.mix):
        members = assignment == idx
        count = int(np.count_nonzero(members))
        if count == 0:
            continue
        done = state.done & members
        n_done = int(np.count_nonzero(done))
        times = state.done_t_s[done] - state.start_s[done]
        established = state.cell_established & members
        per_stratum[stratum.name] = {
            "sessions": float(count),
            "completed": float(n_done),
            "bytes_mean": float(state.delivered_bytes[members].mean()),
            "energy_j_mean": float(state.energy_j[members].mean()),
            "download_time_mean_s": (
                float(times.mean()) if n_done else float("nan")
            ),
            "cell_established_frac": (
                float(np.count_nonzero(established)) / count
            ),
        }
    bytes_total = float(state.delivered_bytes.sum())
    sim_t_end = engine.now
    goodput_mbps = (
        bytes_total * 8.0 / 1e6 / sim_t_end if sim_t_end > 0 else 0.0
    )
    return FleetResult(
        spec_hash=spec.content_hash(),
        sessions=spec.sessions,
        duration_s=spec.duration_s,
        sim_t_end_s=sim_t_end,
        epochs=engine.epochs,
        session_steps=engine.session_steps,
        completed=int(np.count_nonzero(state.done)),
        bytes_total=bytes_total,
        energy_total_j=float(state.energy_j.sum()),
        goodput_mbps=goodput_mbps,
        per_stratum=per_stratum,
    )


def sweep_fleet(
    spec: FleetSpec, session_counts: Sequence[int]
) -> List[FleetResult]:
    """Run the same population recipe at several fleet sizes."""
    if not session_counts:
        raise ConfigurationError("sweep needs at least one session count")
    return [
        run_fleet(dataclasses.replace(spec, sessions=int(n)))
        for n in session_counts
    ]


__all__ = [
    "DEFAULT_MIX",
    "FleetResult",
    "FleetScenario",
    "FleetSpec",
    "build_fleet",
    "run_fleet",
    "summarize_fleet",
    "sweep_fleet",
]
