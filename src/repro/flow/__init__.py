"""``repro.flow`` — the third engine tier: analytic, vectorized, huge.

Where the fluid tier models one connection with rate events and the
packet tier with individual segments, the flow tier computes throughput
in closed form (slow-start ramp + Mathis square-root cap + capacity
share) and advances *every* session's control state — Holt-Winters
predictor, EIB thresholds, hysteresis controller, delayed cellular
establishment, RRC machine, energy accounting — as numpy arrays in
fixed epochs.  That trades per-connection fidelity for scale: a single
process steps fleets of 10⁴–10⁶ concurrent eMPTCP sessions, which is
what the population-scale questions (aggregate energy saved, shared-cell
contention) need.

Entry points:

* ``run_scenario(..., engine="flow")`` — one paper scenario on the flow
  tier (:mod:`repro.flow.single`), CHK5xx-comparable against fluid;
* :func:`~repro.flow.fleet.run_fleet` /
  :func:`~repro.flow.fleet.sweep_fleet` — population runs from a
  :class:`~repro.flow.fleet.FleetSpec` (CLI: ``emptcp-repro fleet``).
"""

from repro.flow.contention import cell_share_bytes_per_sec
from repro.flow.dataplane import FlowDataPlane, FlowSubflowView
from repro.flow.engine import FleetEngine
from repro.flow.fleet import (
    DEFAULT_MIX,
    FleetResult,
    FleetScenario,
    FleetSpec,
    build_fleet,
    run_fleet,
    summarize_fleet,
    sweep_fleet,
)
from repro.flow.models import (
    INITIAL_WINDOW_BYTES,
    EibTable,
    epoch_rate_bytes_per_sec,
    holt_winters_forecast_mbps,
    holt_winters_update,
    mathis_rate_bytes_per_sec,
    ramp_bytes,
)
from repro.flow.single import run_flow_scenario
from repro.flow.state import FleetState, SessionParams

__all__ = [
    "DEFAULT_MIX",
    "EibTable",
    "FleetEngine",
    "FleetResult",
    "FleetScenario",
    "FleetSpec",
    "FleetState",
    "FlowDataPlane",
    "FlowSubflowView",
    "INITIAL_WINDOW_BYTES",
    "SessionParams",
    "build_fleet",
    "cell_share_bytes_per_sec",
    "epoch_rate_bytes_per_sec",
    "holt_winters_forecast_mbps",
    "holt_winters_update",
    "mathis_rate_bytes_per_sec",
    "ramp_bytes",
    "run_fleet",
    "run_flow_scenario",
    "summarize_fleet",
    "sweep_fleet",
]
