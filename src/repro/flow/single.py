"""Run one :class:`~repro.experiments.scenario.Scenario` on the flow
engine and return the standard :class:`RunResult`.

This is the ``engine="flow"`` entry point behind
:func:`repro.experiments.runner.run_scenario` — a one-session fleet.
The scenario's capacity-process factories are instantiated with the
same seeded streams as the fluid engine and attached to a private
event simulator that exists only to evolve the capacity processes; the
flow engine samples their rates at each epoch boundary.  Everything
else (workload, device profile, drain accounting, result shape) mirrors
the fluid runner so the CHK5xx agreement report can compare the two
tiers run-for-run.
"""

from __future__ import annotations

from typing import Dict

from repro import obs as _obs
from repro.engines.compiler import ensure_supported, validate_run
from repro.errors import SimulationError
from repro.experiments.scenario import RunResult, Scenario
from repro.flow.engine import FleetEngine
from repro.flow.state import PROTO_EMPTCP, FleetState, SessionParams
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import TimeSeries
from repro.units import bytes_per_sec_to_mbps

#: Sampling interval for the result's rate/capacity traces, seconds
#: (the fluid runner's TRACE_INTERVAL).
TRACE_INTERVAL_S = 1.0


def compile_flow_scenario(
    scenario: Scenario,
    sim: Simulator,
    streams: RandomStreams,
    protocol: str = "emptcp",
):
    """Lower one scenario to flow-tier state: a one-session
    :class:`~repro.flow.state.FleetState` plus the live capacity
    processes, attached to ``sim`` (an event simulator that exists
    only to evolve them between epochs).

    Returns ``(state, wifi_cap, cell_cap)``.  Capability mismatches
    (WiFi contention has no analytic counterpart) are normally caught
    at Tier-2 verify time; the check here is the defensive backstop
    for direct callers, with the same canonical error.
    """
    ensure_supported("flow", scenario)
    wifi_cap = scenario.wifi_capacity(streams.stream("wifi-capacity"))
    cell_cap = scenario.cell_capacity(streams.stream("cell-capacity"))
    wifi_cap.attach(sim)
    cell_cap.attach(sim)
    download_bytes = (
        scenario.download_bytes
        if scenario.download_bytes is not None
        else float("inf")
    )
    state = FleetState(
        [
            SessionParams(
                protocol=protocol,
                wifi_capacity_bytes_per_sec=wifi_cap.rate,
                cell_capacity_bytes_per_sec=cell_cap.rate,
                wifi_rtt_s=scenario.wifi_rtt,
                cell_rtt_s=scenario.cell_rtt,
                wifi_loss=scenario.wifi_loss,
                cell_loss=scenario.cell_loss,
                download_bytes=download_bytes,
            )
        ],
        scenario.emptcp_config,
    )
    return state, wifi_cap, cell_cap


def run_flow_scenario(protocol: str, scenario: Scenario, seed: int = 0) -> RunResult:
    """Execute one (protocol, scenario, seed) run on the flow engine."""
    validate_run("flow", protocol, scenario)

    cap_sim = Simulator()
    streams = RandomStreams(seed)
    state, wifi_cap, cell_cap = compile_flow_scenario(
        scenario, cap_sim, streams, protocol=protocol
    )
    engine = FleetEngine(
        state,
        profile=scenario.profile,
        cell_kind=scenario.cell_kind,
        direction=scenario.direction,
    )

    wifi_rates = TimeSeries("wifi-rate-Bps")
    cell_rates = TimeSeries("cell-rate-Bps")
    wifi_avail = TimeSeries("wifi-available-Bps")
    cell_avail = TimeSeries("cell-available-Bps")
    energy_series = TimeSeries("energy-J")
    epochs_per_trace = max(1, round(TRACE_INTERVAL_S / engine.epoch_s))
    cursor = {"wifi": 0.0, "cell": 0.0}

    def trace_tick() -> None:
        now = engine.now
        delivered_w = float(state.wifi_delivered_bytes[0])
        delivered_c = float(state.cell_delivered_bytes[0])
        wifi_rates.record(now, (delivered_w - cursor["wifi"]) / TRACE_INTERVAL_S)
        cell_rates.record(now, (delivered_c - cursor["cell"]) / TRACE_INTERVAL_S)
        cursor["wifi"] = delivered_w
        cursor["cell"] = delivered_c
        wifi_avail.record(now, wifi_cap.rate)
        cell_avail.record(now, cell_cap.rate)
        energy_series.record(now, float(state.energy_j[0]))

    # --- run -------------------------------------------------------------
    download_time = None
    energy_at_completion = None
    finite = scenario.download_bytes is not None
    horizon = scenario.max_sim_time if finite else scenario.duration
    trace_tick()  # immediate first sample, like the fluid tracer
    while True:
        t0 = engine.now
        if finite and bool(state.done[0]) and download_time is None:
            download_time = float(state.done_t_s[0])
            energy_at_completion = float(state.energy_at_completion_j[0])
        if not finite and not bool(state.done[0]) and t0 >= horizon - 1e-9:
            # Fixed measurement window: cut the run, then drain.
            energy_at_completion = float(state.energy_j[0])
            state.done[0] = True
            state.done_t_s[0] = horizon
            state.closed_t_s[0] = horizon + engine.drain_s
        if engine.all_closed():
            break
        if finite and download_time is None and t0 >= horizon - 1e-9:
            raise SimulationError(
                f"{protocol} on {scenario.name} (flow engine): transfer did "
                f"not complete within {scenario.max_sim_time}s"
            )
        # Evolve the capacity processes to this epoch and resample.
        cap_sim.run(until=t0)
        state.wifi_capacity_bytes_per_sec[0] = wifi_cap.rate
        state.cell_capacity_bytes_per_sec[0] = cell_cap.rate
        engine.step()
        if engine.epochs % epochs_per_trace == 0 and download_time is None:
            trace_tick()

    energy_total = float(state.energy_j[0])
    if energy_at_completion is None:
        energy_at_completion = energy_total
    _checkpoint_subflows(engine, protocol)

    return RunResult(
        protocol=protocol,
        scenario=scenario.name,
        seed=seed,
        download_time=download_time,
        bytes_received=float(state.delivered_bytes[0]),
        energy_j=energy_total,
        energy_at_completion_j=energy_at_completion,
        energy_series=energy_series,
        wifi_rate_series=wifi_rates,
        cell_rate_series=cell_rates,
        measured_wifi_mbps=_mean_mbps(wifi_avail),
        measured_cell_mbps=_mean_mbps(cell_avail),
        diagnostics=_diagnostics(engine, protocol),
    )


def _mean_mbps(series: TimeSeries) -> float:
    if len(series) == 0:
        return 0.0
    mean = series.time_weighted_mean()
    return bytes_per_sec_to_mbps(mean) if mean is not None else 0.0


def _checkpoint_subflows(engine: FleetEngine, protocol: str) -> None:
    """Flow twin of the fluid runner's ``subflow.checkpoint`` events
    (CHK306 byte conservation)."""
    trace = _obs.tracer_or_none()
    if trace is None or protocol == "tcp-wifi":
        return
    st = engine.state
    conn_bytes = float(st.delivered_bytes[0])
    lanes = [("s0-wifi", InterfaceKind.WIFI, float(st.wifi_delivered_bytes[0]))]
    if bool(st.cell_established[0]):
        lanes.append(
            ("s0-" + engine.cell_kind.value, engine.cell_kind,
             float(st.cell_delivered_bytes[0]))
        )
    for name, kind, delivered in lanes:
        trace.emit(
            "subflow.checkpoint",
            t=engine.now,
            subflow=name,
            interface=kind.value,
            delivered_bytes=delivered,
            conn_bytes=conn_bytes,
        )


def _diagnostics(engine: FleetEngine, protocol: str) -> Dict[str, float]:
    """Mirror the fluid runner's diagnostic keys for one flow session."""
    st = engine.state
    diag: Dict[str, float] = {}
    if protocol == "tcp-wifi":
        return diag
    cell_key = engine.cell_kind.value
    diag["subflows"] = 1.0 + (1.0 if bool(st.cell_established[0]) else 0.0)
    diag["wifi_bytes"] = float(st.wifi_delivered_bytes[0])
    diag["wifi_suspends"] = float(st.wifi_suspend_count[0])
    if bool(st.cell_established[0]):
        diag[f"{cell_key}_bytes"] = float(st.cell_delivered_bytes[0])
        diag[f"{cell_key}_suspends"] = float(st.cell_suspend_count[0])
    if int(st.protocol[0]) == PROTO_EMPTCP:
        diag["decision_switches"] = float(st.decision_switches[0])
        diag["cell_established"] = 1.0 if bool(st.cell_established[0]) else 0.0
        if bool(st.cell_established[0]):
            diag["cell_established_at"] = float(st.cell_established_t_s[0])
    return diag


__all__ = ["TRACE_INTERVAL_S", "compile_flow_scenario", "run_flow_scenario"]
