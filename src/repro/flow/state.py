"""Vectorized per-session control/energy state for the flow tier.

One :class:`FleetState` holds every per-session scalar the fluid tier
keeps in objects (predictor, EIB decision, delayed establishment, RRC,
energy meter) as a struct-of-arrays, so the engine can advance 10⁴–10⁶
sessions with a handful of numpy operations per epoch.

Lane convention: each session has two lanes, WiFi and cellular, stored
as parallel ``wifi_*`` / ``cell_*`` arrays.  Decision, RRC, and protocol
codes are small ints so masks stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import EMPTCPConfig
from repro.errors import ConfigurationError

# Protocol codes.
PROTO_TCP_WIFI = 0
PROTO_MPTCP = 1
PROTO_EMPTCP = 2

PROTOCOL_CODES = {
    "tcp-wifi": PROTO_TCP_WIFI,
    "mptcp": PROTO_MPTCP,
    "emptcp": PROTO_EMPTCP,
}

# Path-usage decision codes (mirror core.controller.Decision).
DEC_WIFI_ONLY = 0
DEC_BOTH = 1
DEC_CELL_ONLY = 2

DECISION_NAMES = {DEC_WIFI_ONLY: "wifi-only", DEC_BOTH: "both",
                  DEC_CELL_ONLY: "cellular-only"}

# RRC codes (mirror energy.rrc.RrcState).
RRC_IDLE = 0
RRC_PROMOTING = 1
RRC_ACTIVE = 2
RRC_TAIL = 3


@dataclass
class SessionParams:
    """Plain per-session inputs used to build a :class:`FleetState`.

    ``download_bytes`` of ``inf`` means an open-ended (duration-bound)
    session; ``cell_id`` groups sessions onto a shared cell for
    proportional-fair contention (-1 = private, uncontended cell).
    """

    protocol: str
    wifi_capacity_bytes_per_sec: float
    cell_capacity_bytes_per_sec: float
    wifi_rtt_s: float = 0.050
    cell_rtt_s: float = 0.070
    wifi_loss: float = 0.0
    cell_loss: float = 0.0
    download_bytes: float = float("inf")
    start_s: float = 0.0
    cell_id: int = -1


class FleetState:
    """Struct-of-arrays for a fleet of ``n`` eMPTCP/MPTCP/TCP sessions."""

    def __init__(self, params: Sequence[SessionParams], config: EMPTCPConfig):
        n = len(params)
        if n == 0:
            raise ConfigurationError("a fleet needs at least one session")
        self.n = n
        self.config = config

        def farr(get):
            return np.array([get(p) for p in params], dtype=float)

        unknown = sorted({p.protocol for p in params} - set(PROTOCOL_CODES))
        if unknown:
            raise ConfigurationError(
                f"flow engine does not support protocols {unknown}; "
                f"choose from {sorted(PROTOCOL_CODES)}"
            )
        self.protocol = np.array(
            [PROTOCOL_CODES[p.protocol] for p in params], dtype=np.int8
        )
        self.cell_id = np.array([p.cell_id for p in params], dtype=np.int64)

        self.start_s = farr(lambda p: p.start_s)
        self.download_bytes = farr(lambda p: p.download_bytes)

        # --- lane link parameters -------------------------------------
        self.wifi_capacity_bytes_per_sec = farr(
            lambda p: p.wifi_capacity_bytes_per_sec)
        self.cell_capacity_bytes_per_sec = farr(
            lambda p: p.cell_capacity_bytes_per_sec)
        self.wifi_rtt_s = farr(lambda p: p.wifi_rtt_s)
        self.cell_rtt_s = farr(lambda p: p.cell_rtt_s)
        self.wifi_loss = farr(lambda p: p.wifi_loss)
        self.cell_loss = farr(lambda p: p.cell_loss)

        # --- lane lifecycle -------------------------------------------
        # WiFi is every protocol's primary subflow; it establishes at
        # session start after one handshake RTT.  The cellular lane is
        # open from the start for plain MPTCP, gated behind delayed
        # establishment for eMPTCP, and absent for tcp-wifi.
        self.wifi_established = np.zeros(n, dtype=bool)
        self.cell_established = np.zeros(n, dtype=bool)
        self.wifi_suspended = np.zeros(n, dtype=bool)
        self.cell_suspended = np.zeros(n, dtype=bool)
        self.cell_allowed = self.protocol != PROTO_TCP_WIFI
        self.cell_auto = self.protocol == PROTO_MPTCP
        #: slow-start origin per lane; inf until the lane starts ramping.
        self.wifi_ramp_origin_s = np.full(n, np.inf)
        self.cell_ramp_origin_s = np.full(n, np.inf)
        self.wifi_delivered_bytes = np.zeros(n)
        self.cell_delivered_bytes = np.zeros(n)
        self.wifi_suspend_count = np.zeros(n, dtype=np.int64)
        self.cell_suspend_count = np.zeros(n, dtype=np.int64)

        # --- session lifecycle ----------------------------------------
        self.started = np.zeros(n, dtype=bool)
        self.done = np.zeros(n, dtype=bool)
        self.done_t_s = np.full(n, np.inf)     # completion instant
        self.closed_t_s = np.full(n, np.inf)   # completion + drain window
        self.session_epochs = np.zeros(n, dtype=np.int64)

        # --- predictor (Holt-Winters per lane) ------------------------
        self.wifi_level_mbps = np.zeros(n)
        self.wifi_trend_mbps = np.zeros(n)
        self.wifi_hw_ready = np.zeros(n, dtype=bool)
        self.wifi_sample_count = np.zeros(n, dtype=np.int64)
        self.wifi_sample_due_s = np.full(n, np.inf)
        self.wifi_sample_from_s = np.zeros(n)
        self.wifi_sample_from_bytes = np.zeros(n)
        self.cell_level_mbps = np.zeros(n)
        self.cell_trend_mbps = np.zeros(n)
        self.cell_hw_ready = np.zeros(n, dtype=bool)
        self.cell_sample_count = np.zeros(n, dtype=np.int64)
        self.cell_sample_due_s = np.full(n, np.inf)
        self.cell_sample_from_s = np.zeros(n)
        self.cell_sample_from_bytes = np.zeros(n)
        #: per-lane sampling period δ = clamp(6·RTT, 0.5, 2.0) (§3.2).
        self.wifi_delta_s = np.array(
            [config.sampling_interval(p.wifi_rtt_s) for p in params])
        self.cell_delta_s = np.array(
            [config.sampling_interval(p.cell_rtt_s) for p in params])

        # --- delayed establishment (§3.5, eMPTCP only) ----------------
        self.tau_deadline_s = np.where(
            self.protocol == PROTO_EMPTCP,
            self.start_s + config.tau_seconds,
            np.inf,
        )
        self.cell_established_t_s = np.full(n, np.inf)
        self.postponements = np.zeros(n, dtype=np.int64)
        #: κ triggers one evaluation when first crossed; afterwards only
        #: the τ timer re-opens the question (mirrors control.delay).
        self.kappa_checked = np.zeros(n, dtype=bool)

        # --- path-usage controller (§3.3–3.4, eMPTCP only) ------------
        self.decision = np.full(n, DEC_BOTH, dtype=np.int8)
        self.decision_switches = np.zeros(n, dtype=np.int64)

        # --- RRC + energy ---------------------------------------------
        self.rrc = np.full(n, RRC_IDLE, dtype=np.int8)
        self.rrc_until_s = np.full(n, np.inf)
        self.rrc_promotions = np.zeros(n, dtype=np.int64)
        self.energy_j = np.zeros(n)
        self.energy_at_completion_j = np.full(n, np.nan)

    # -- convenience views ---------------------------------------------
    @property
    def delivered_bytes(self) -> np.ndarray:
        """Total delivered bytes per session (both lanes)."""
        return self.wifi_delivered_bytes + self.cell_delivered_bytes

    @property
    def emptcp(self) -> np.ndarray:
        return self.protocol == PROTO_EMPTCP


__all__ = [
    "DEC_BOTH",
    "DEC_CELL_ONLY",
    "DEC_WIFI_ONLY",
    "DECISION_NAMES",
    "FleetState",
    "PROTO_EMPTCP",
    "PROTO_MPTCP",
    "PROTO_TCP_WIFI",
    "PROTOCOL_CODES",
    "RRC_ACTIVE",
    "RRC_IDLE",
    "RRC_PROMOTING",
    "RRC_TAIL",
    "SessionParams",
]
