"""Analytic per-connection throughput models (the flow tier's physics).

Where the fluid engine advances congestion windows event-by-event and
the packet engine moves individual segments, the flow tier computes
each connection's rate in closed form, vectorized over the whole fleet:

* **slow-start ramp** — a connection that started sending at ``origin``
  ramps exponentially from the initial window, doubling once per RTT
  (:func:`ramp_bytes` integrates the ramp analytically over an epoch so
  coarse epochs do not under-count the doubling inside them);
* **square-root loss cap** — on a lossy path the steady-state rate is
  bounded by the Mathis/PFTK relation ``(MSS/RTT)·sqrt(3/(2p))``
  (:func:`mathis_rate_bytes_per_sec`), the classic closed-form TCP
  throughput model (in the style of fs's ``tcpmodels``);
* **capacity share** — the path (or the proportional-fair cell share,
  :mod:`repro.flow.contention`) bounds the rate from above.

The effective epoch rate is the minimum of the three.  All functions
take and return numpy arrays so one call serves 10⁴–10⁶ sessions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.eib import EnergyInformationBase
from repro.tcp.congestion import DEFAULT_INIT_CWND_SEGMENTS, DEFAULT_MSS

#: Initial congestion window in bytes (RFC 6928's IW10, matching the
#: event engines' default).
INITIAL_WINDOW_BYTES = float(DEFAULT_INIT_CWND_SEGMENTS) * DEFAULT_MSS

#: Stand-in for an infinite threshold/rate in vectorized math (np.interp
#: cannot carry ``inf`` through interpolation meaningfully).
_HUGE_MBPS = 1e9

#: Exponent clamp for ``exp2`` so a long-running ramp cannot overflow.
_MAX_EXP2 = 60.0

_LN2 = float(np.log(2.0))


def mathis_rate_bytes_per_sec(
    rtt_s: np.ndarray, loss: np.ndarray, mss_bytes: float = DEFAULT_MSS
) -> np.ndarray:
    """Loss-limited steady-state TCP rate, bytes/second.

    The square-root model: ``MSS/RTT · sqrt(3/(2p))``.  Lossless paths
    (``p == 0``) return a huge sentinel so the capacity bound wins the
    ``min`` downstream.
    """
    rtt_s = np.asarray(rtt_s, dtype=float)
    loss = np.asarray(loss, dtype=float)
    safe = np.where(loss > 0.0, loss, 1.0)
    capped = (mss_bytes / np.maximum(rtt_s, 1e-9)) * np.sqrt(1.5 / safe)
    return np.where(loss > 0.0, capped, np.inf)


def ramp_bytes(
    t0: float,
    t1: float,
    origin_s: np.ndarray,
    rtt_s: np.ndarray,
    cap_bytes_per_sec: np.ndarray,
    init_window_bytes: float = INITIAL_WINDOW_BYTES,
) -> np.ndarray:
    """Bytes a slow-starting connection moves during ``[t0, t1]``.

    The instantaneous rate is ``r0·2^((u-origin)/RTT)`` (``r0`` = one
    initial window per RTT) until it reaches the path cap, then the cap.
    Integrating the exponential analytically keeps the model exact even
    when an epoch spans several doublings.  Lanes whose ``origin`` lies
    beyond ``t1`` (not yet ramping) contribute zero.
    """
    origin_s = np.asarray(origin_s, dtype=float)
    rtt_s = np.maximum(np.asarray(rtt_s, dtype=float), 1e-9)
    cap = np.asarray(cap_bytes_per_sec, dtype=float)
    start_rate = init_window_bytes / rtt_s
    finite_cap = np.minimum(cap, np.exp2(_MAX_EXP2) * start_rate)
    # When the ramp's starting rate already exceeds the cap, the ramp
    # phase has zero length.
    rounds_to_cap = np.log2(np.maximum(finite_cap, start_rate) / start_rate)
    cap_reached_s = origin_s + rtt_s * rounds_to_cap
    a = np.clip(origin_s, t0, t1)          # sending begins at origin
    ramp_end = np.clip(cap_reached_s, a, t1)
    ea = np.exp2(np.clip((a - origin_s) / rtt_s, -_MAX_EXP2, _MAX_EXP2))
    eb = np.exp2(np.clip((ramp_end - origin_s) / rtt_s, -_MAX_EXP2, _MAX_EXP2))
    exp_bytes = start_rate * rtt_s / _LN2 * (eb - ea)
    flat_bytes = finite_cap * np.maximum(t1 - ramp_end, 0.0)
    return np.maximum(exp_bytes + flat_bytes, 0.0)


def epoch_rate_bytes_per_sec(
    t0: float,
    t1: float,
    origin_s: np.ndarray,
    rtt_s: np.ndarray,
    loss: np.ndarray,
    capacity_bytes_per_sec: np.ndarray,
    sending: np.ndarray,
) -> np.ndarray:
    """Mean rate of every lane over one epoch, bytes/second.

    The per-lane cap is ``min(capacity, Mathis)``; the slow-start ramp
    is integrated under that cap; non-``sending`` lanes move nothing.
    """
    if t1 <= t0:
        raise ValueError(f"empty epoch [{t0}, {t1}]")
    cap = np.minimum(
        np.asarray(capacity_bytes_per_sec, dtype=float),
        mathis_rate_bytes_per_sec(rtt_s, loss),
    )
    moved = ramp_bytes(t0, t1, origin_s, rtt_s, cap)
    return np.where(sending, moved / (t1 - t0), 0.0)


class EibTable:
    """The EIB's threshold curves as numpy arrays (vectorized lookup).

    Built once from an :class:`~repro.core.eib.EnergyInformationBase`;
    ``thresholds_mbps`` then answers a whole fleet's lookups with two
    ``np.interp`` calls (which clamp at the grid edges, matching the
    scalar ``EnergyInformationBase.thresholds``).  Infinite thresholds
    (WiFi-only never wins) are carried as a huge finite sentinel, which
    behaves identically under the controller's ``>=`` comparisons.
    """

    def __init__(
        self,
        eib: EnergyInformationBase,
        cell_grid_mbps: Optional[Sequence[float]] = None,
    ):
        if cell_grid_mbps is None:
            cell_grid_mbps = [0.1 * i for i in range(1, 301)]
        rows = eib.table_rows(list(cell_grid_mbps))
        self.cell_grid_mbps = np.array([r.cell_mbps for r in rows], dtype=float)
        self.cell_only_mbps = np.array(
            [min(r.cellular_only_below, _HUGE_MBPS) for r in rows], dtype=float
        )
        self.wifi_only_mbps = np.array(
            [min(r.wifi_only_above, _HUGE_MBPS) for r in rows], dtype=float
        )

    def thresholds_mbps(
        self, cell_mbps: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(cellular_only_below, wifi_only_above)`` per session."""
        cell_mbps = np.asarray(cell_mbps, dtype=float)
        return (
            np.interp(cell_mbps, self.cell_grid_mbps, self.cell_only_mbps),
            np.interp(cell_mbps, self.cell_grid_mbps, self.wifi_only_mbps),
        )


def holt_winters_update(
    sample_mbps: np.ndarray,
    level_mbps: np.ndarray,
    trend_mbps: np.ndarray,
    initialized: np.ndarray,
    mask: np.ndarray,
    alpha: float,
    beta: float,
) -> None:
    """One vectorized Holt linear-trend step, in place, where ``mask``.

    Exactly the scalar :class:`~repro.core.forecast.HoltWintersForecaster`
    recurrence: the first sample seeds the level with zero trend; later
    samples smooth level and trend with ``alpha``/``beta``.
    """
    first = mask & ~initialized
    level_mbps[first] = sample_mbps[first]
    trend_mbps[first] = 0.0
    later = mask & initialized
    prev = level_mbps[later]
    new_level = alpha * sample_mbps[later] + (1.0 - alpha) * (
        prev + trend_mbps[later]
    )
    level_mbps[later] = new_level
    trend_mbps[later] = beta * (new_level - prev) + (1.0 - beta) * trend_mbps[later]
    initialized[mask] = True


def holt_winters_forecast_mbps(
    level_mbps: np.ndarray,
    trend_mbps: np.ndarray,
    initialized: np.ndarray,
    initial_bandwidth_mbps: float,
) -> np.ndarray:
    """One-step forecast per lane; the §3.2 initial-bandwidth assumption
    stands in for never-sampled lanes."""
    return np.where(
        initialized,
        np.maximum(level_mbps + trend_mbps, 0.0),
        initial_bandwidth_mbps,
    )


__all__ = [
    "INITIAL_WINDOW_BYTES",
    "EibTable",
    "epoch_rate_bytes_per_sec",
    "holt_winters_forecast_mbps",
    "holt_winters_update",
    "mathis_rate_bytes_per_sec",
    "ramp_bytes",
]
