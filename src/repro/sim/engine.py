"""The discrete-event simulation engine.

A :class:`Simulator` keeps a priority queue of timestamped callbacks.
Time only advances when :meth:`Simulator.run` pops events; between
events nothing happens, which is what makes piecewise-constant energy
integration (see :mod:`repro.energy.meter`) exact.

Determinism
-----------
Events with equal timestamps fire in scheduling order (a monotonically
increasing sequence number breaks ties), so a simulation driven by
seeded random streams is fully reproducible.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional

from repro import obs as _obs
from repro.errors import SimulationError

Callback = Callable[..., Any]


class DispatchStats:
    """Process-wide dispatch totals, accumulated by every
    :meth:`Simulator.run` regardless of observability state.

    The perf-telemetry layer (:mod:`repro.runtime.perf`) snapshots the
    totals around a run to attribute events dispatched and simulated
    seconds to that run without requiring a capture session — the
    accumulation cost is two additions per ``run()`` call, not per
    event.
    """

    __slots__ = ("events", "sim_s")

    def __init__(self) -> None:
        self.events = 0
        self.sim_s = 0.0

    def snapshot(self) -> "DispatchSnapshot":
        return (self.events, self.sim_s)


#: ``(events, sim seconds)`` pair returned by :meth:`DispatchStats.snapshot`.
DispatchSnapshot = tuple

_DISPATCH_STATS = DispatchStats()


def dispatch_stats() -> DispatchStats:
    """The process-wide dispatch accumulator."""
    return _DISPATCH_STATS


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`.  Cancelling is O(1): the event stays
    in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callback, args: tuple):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice or cancelling an event
        that already fired is a silent no-op (timers race with their own
        expiry all the time)."""
        self.cancelled = True
        self.callback = None
        self.args = ()

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """A minimal but complete discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=10.0)

    The simulator is single-threaded and re-entrant: callbacks may
    schedule and cancel further events freely.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[EventHandle] = []
        self._running = False
        self._stopped = False
        self.events_processed = 0
        metrics = _obs.metrics_or_none()
        self._dispatch_counter = (
            metrics.counter("sim.events") if metrics is not None else None
        )
        self._prof = _obs.profiler_or_none()
        if self._prof is not None:
            # First simulator in the capture wins; its virtual clock
            # makes the profiler's sim-time column deterministic.
            self._prof.bind_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.
        """
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(f"invalid event delay: {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"invalid event time: {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        handle = EventHandle(time, self._seq, callback, tuple(args))
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._queue[0].time if self._queue else None

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)

    def step(self) -> bool:
        """Run exactly one event.  Returns False if none was pending."""
        self._drop_cancelled()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        assert handle.callback is not None
        self._now = handle.time
        callback, args = handle.callback, handle.args
        # Mark fired before invoking so a callback cancelling its own
        # handle is harmless.
        handle.callback = None
        handle.args = ()
        prof = self._prof
        if prof is not None:
            with prof.span("sim.dispatch"):
                callback(*args)
        else:
            callback(*args)
        self.events_processed += 1
        if self._dispatch_counter is not None:
            self._dispatch_counter.inc()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event lies strictly beyond this
            time, and advance the clock to exactly ``until``.
        max_events:
            Safety valve for tests; raise :class:`SimulationError` if
            exceeded (it usually means two components ping-pong forever).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        processed = 0
        started_at = self._now
        prof = self._prof
        if prof is not None:
            prof.begin("sim.run")
        try:
            while not self._stopped:
                self._drop_cancelled()
                if not self._queue:
                    break
                if until is not None and self._queue[0].time > until:
                    break
                self.step()
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
            _DISPATCH_STATS.events += processed
            _DISPATCH_STATS.sim_s += self._now - started_at
            if prof is not None:
                prof.end()

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for h in self._queue if not h.cancelled)
