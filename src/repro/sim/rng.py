"""Named, seeded random streams.

Each stochastic component (the WiFi on-off modulator, every interfering
node, the wild-environment sampler...) draws from its own named stream
so that adding a component never perturbs the draws seen by another.
This is the standard trick for variance reduction and reproducibility
in network simulators (ns-2/ns-3 do the same).
"""

from __future__ import annotations

import random
from typing import Dict


class RandomStreams:
    """A factory of independent :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived from the
    master seed and the name, so two simulations with the same master
    seed see identical draws per component regardless of creation order.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            # Derive a stable 64-bit seed from (master_seed, name).
            derived = hash_seed(self.master_seed, name)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        return RandomStreams(hash_seed(self.master_seed, f"spawn:{name}"))


def hash_seed(master_seed: int, name: str) -> int:
    """Derive a deterministic 64-bit seed from a master seed and a name.

    Uses FNV-1a over the name bytes mixed with the master seed; stable
    across processes and Python versions (unlike built-in ``hash``).
    """
    h = 0xCBF29CE484222325 ^ (master_seed & 0xFFFFFFFFFFFFFFFF)
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
