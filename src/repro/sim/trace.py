"""Time-series recording utilities.

Two flavours are used throughout the reproduction:

* :class:`TimeSeries` — plain ``(t, value)`` samples, e.g. throughput
  samples plotted in Figure 9 or the accumulated-energy curves of
  Figures 7 and 12.
* :class:`StepTrace` — a piecewise-constant signal (link capacity,
  interface power) that knows how to integrate itself over time.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import SimulationError


class TimeSeries:
    """An append-only series of timestamped samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample.  Times must be non-decreasing.

        Samples are stored as floats so a series is identical whether
        it was recorded in-process or decoded from a worker/cache dict
        (an int sample would otherwise serialise differently).
        """
        time = float(time)
        if self.times and time < self.times[-1]:
            raise SimulationError(
                f"TimeSeries {self.name!r}: non-monotonic time {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.name == other.name
            and self.times == other.times
            and self.values == other.values
        )

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-ready form (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "times": list(self.times),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimeSeries":
        """Rebuild a series from :meth:`to_dict` output.

        Floats survive both JSON and pickling exactly, so a round trip
        reproduces the original series bit-for-bit.
        """
        try:
            times = [float(t) for t in data["times"]]
            values = [float(v) for v in data["values"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed TimeSeries data: {exc}") from exc
        if len(times) != len(values):
            raise SimulationError(
                f"malformed TimeSeries data: {len(times)} times "
                f"vs {len(values)} values"
            )
        out = cls(str(data.get("name", "")))
        for t, v in zip(times, values):
            out.record(t, v)
        return out

    def integral(self) -> float:
        """Step-integral over the series' span.

        Each sample holds until the next one (the final sample spans no
        time), matching how the periodic tracer samples a
        piecewise-constant signal.
        """
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        return total

    def time_weighted_mean(self) -> Optional[float]:
        """Mean value weighted by how long each sample was in effect.

        A plain average of the samples would over-weight any burst of
        closely spaced samples; integrating the step function divides
        out the actual span.  A single sample (or zero span) is its own
        mean; an empty series has no mean and returns ``None`` (an
        absent measurement, not a measured zero).
        """
        if not self.times:
            return None
        span = self.times[-1] - self.times[0]
        if span <= 0.0:
            return self.values[-1]
        return self.integral() / span

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent ``(time, value)`` sample, or None when empty."""
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def value_at(self, time: float) -> float:
        """Most recent sample value at or before ``time`` (step semantics).

        Raises :class:`SimulationError` when asked before the first sample.
        """
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            raise SimulationError(
                f"TimeSeries {self.name!r}: no sample at or before t={time}"
            )
        return self.values[idx]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t <= end`` as a new series."""
        out = TimeSeries(self.name)
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def resample(self, times: Iterable[float]) -> "TimeSeries":
        """Step-resample the series at the given times."""
        out = TimeSeries(self.name)
        for t in times:
            out.record(t, self.value_at(t))
        return out


class StepTrace:
    """A piecewise-constant signal with exact integration.

    ``set(t, v)`` declares that the signal holds value ``v`` from ``t``
    onward; :meth:`integral` integrates the step function.  This is the
    backbone of the energy meter: power is constant between events, so
    energy is an exact sum of ``power * dt`` terms.
    """

    def __init__(self, name: str = "", initial: float = 0.0):
        self.name = name
        self._series = TimeSeries(name)
        self._series.record(0.0, initial)

    def set(self, time: float, value: float) -> None:
        """Set the signal value from ``time`` onward."""
        last = self._series.last
        assert last is not None
        if last[0] == time:
            # Overwrite a same-time update rather than stacking duplicates.
            self._series.values[-1] = value
            return
        self._series.record(time, value)

    def value_at(self, time: float) -> float:
        """Signal value at ``time``."""
        return self._series.value_at(time)

    def integral(self, start: float, end: float) -> float:
        """Exact integral of the step function over ``[start, end]``."""
        if end < start:
            raise SimulationError(f"integral over reversed interval [{start}, {end}]")
        if end == start:
            return 0.0
        times, values = self._series.times, self._series.values
        total = 0.0
        cursor = start
        idx = bisect.bisect_right(times, start) - 1
        if idx < 0:
            raise SimulationError(
                f"StepTrace {self.name!r}: integral starts before first sample"
            )
        while cursor < end:
            nxt = times[idx + 1] if idx + 1 < len(times) else end
            seg_end = min(nxt, end)
            total += values[idx] * (seg_end - cursor)
            cursor = seg_end
            idx += 1
        return total

    def breakpoints(self) -> List[Tuple[float, float]]:
        """The underlying ``(time, value)`` breakpoints."""
        return list(self._series)
