"""Timer and periodic-process helpers on top of the event engine.

These wrap the raw :class:`~repro.sim.engine.Simulator` API with the two
idioms every protocol component needs: a restartable one-shot timer
(retransmission timers, the eMPTCP tau timer) and a periodic tick with a
mutable interval (throughput samplers, control loops).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import obs as _obs
from repro.errors import ConfigurationError
from repro.sim.engine import EventHandle, Simulator


class Timer:
    """A restartable one-shot timer.

    ``start`` (re)arms the timer; ``cancel`` disarms it.  The callback
    fires at most once per arm.  Mirrors how kernel timers behave, which
    keeps the eMPTCP delayed-subflow logic close to the paper's
    description.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._prof = _obs.profiler_or_none()

    @property
    def armed(self) -> bool:
        """True while the timer is pending."""
        return self._handle is not None and self._handle.pending

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        prof = self._prof
        if prof is not None:
            with prof.span("sim.timer"):
                self._callback()
        else:
            self._callback()


class PeriodicProcess:
    """Invoke a callback every ``interval`` seconds.

    The interval may be changed between ticks (the bandwidth sampler
    derives its interval from the measured RTT, which changes over the
    life of a subflow).  The first tick fires one interval after
    :meth:`start` unless ``immediate=True``.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
    ):
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self._prof = _obs.profiler_or_none()

    @property
    def interval(self) -> float:
        """Current tick interval in seconds."""
        return self._interval

    @interval.setter
    def interval(self, value: float) -> None:
        if value <= 0:
            raise ConfigurationError(f"interval must be positive, got {value}")
        self._interval = value

    @property
    def running(self) -> bool:
        """True while ticks are scheduled."""
        return self._handle is not None and self._handle.pending

    def start(self, immediate: bool = False) -> None:
        """Begin ticking.  Restarting while running re-phases the ticks."""
        self.stop()
        delay = 0.0 if immediate else self._interval
        self._handle = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop ticking."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        self._handle = self._sim.schedule(self._interval, self._tick)
        prof = self._prof
        if prof is not None:
            with prof.span("sim.periodic"):
                self._callback()
        else:
            self._callback()
