"""Discrete-event simulation substrate.

The whole reproduction runs on a small, deterministic discrete-event
engine.  The engine knows nothing about networking or energy; it only
orders callbacks in virtual time.  Higher layers (TCP rounds, RRC state
machines, bandwidth modulation, energy metering) are all expressed as
events on a shared :class:`~repro.sim.engine.Simulator`.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.rng import RandomStreams
from repro.sim.trace import StepTrace, TimeSeries

__all__ = [
    "EventHandle",
    "PeriodicProcess",
    "RandomStreams",
    "Simulator",
    "StepTrace",
    "TimeSeries",
    "Timer",
]
