"""Per-interface power models.

Each interface consumes ``base + slope * throughput`` watts while
transferring (the standard linear model of Huang et al. [14], which the
paper's own model [17] extends), a technology-specific state power when
promoted-but-idle (handled by the RRC machine for cellular), and a
small idle power otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import EnergyModelError
from repro.units import bytes_per_sec_to_mbps


import enum


class Direction(enum.Enum):
    """Transfer direction, from the device's point of view."""

    DOWN = "down"
    UP = "up"


@dataclass(frozen=True)
class InterfacePower:
    """Linear power model for one interface.

    Attributes
    ----------
    base_w:
        Power while actively transferring at (extrapolated) zero
        throughput — the radio-active platform cost, watts.
    per_mbps_w:
        Marginal power per megabit/s of download throughput, watts.
    per_mbps_up_w:
        Marginal power per megabit/s of *upload* throughput, watts.
        Radios transmit at much higher power than they receive (Huang
        et al. measured LTE upload at ~8x the download slope); when
        None, the download slope is reused.
    idle_w:
        Power while the interface is associated/registered but not in
        any active or tail state, watts.
    """

    base_w: float
    per_mbps_w: float
    idle_w: float = 0.0
    #: None means "reuse the download slope" (normalised in
    #: ``__post_init__``, so reads always see a float).
    per_mbps_up_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.per_mbps_up_w is None:
            object.__setattr__(self, "per_mbps_up_w", self.per_mbps_w)
        if (
            self.base_w < 0
            or self.per_mbps_w < 0
            or self.idle_w < 0
            or self.per_mbps_up_w < 0
        ):
            raise EnergyModelError("power parameters must be non-negative")
        if self.idle_w > self.base_w:
            raise EnergyModelError("idle power cannot exceed active base power")

    def slope(self, direction: Direction = Direction.DOWN) -> float:
        """Marginal watts per Mbps in the given direction."""
        return (
            self.per_mbps_w if direction is Direction.DOWN else self.per_mbps_up_w
        )

    def active_power(
        self, rate_bytes_per_sec: float, direction: Direction = Direction.DOWN
    ) -> float:
        """Power while transferring at the given rate, watts."""
        if rate_bytes_per_sec < 0:
            raise EnergyModelError(
                f"rate must be non-negative, got {rate_bytes_per_sec}"
            )
        return self.base_w + self.slope(direction) * bytes_per_sec_to_mbps(
            rate_bytes_per_sec
        )

    def active_power_w(
        self, mbps: float, direction: Direction = Direction.DOWN
    ) -> float:
        """Power while transferring at ``mbps`` megabits/s, watts."""
        if mbps < 0:
            raise EnergyModelError(f"mbps must be non-negative, got {mbps}")
        return self.base_w + self.slope(direction) * mbps
