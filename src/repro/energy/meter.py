"""The integrating energy meter.

Between simulator events every interface's rate and RRC state — and
therefore the whole-device power — is constant, so energy is an exact
piecewise-constant integral.  The meter accumulates it lazily: every
state update first charges ``power x elapsed`` since the previous
update.

The meter also keeps a cumulative-energy time series, which is exactly
the accumulated-energy traces of Figures 7 and 12.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import obs as _obs
from repro.energy.device import DeviceProfile
from repro.energy.power import Direction
from repro.energy.rrc import RrcState
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.trace import TimeSeries


class EnergyMeter:
    """Tracks whole-device network energy over a simulation run."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        direction: Direction = Direction.DOWN,
    ):
        self.sim = sim
        self.profile = profile
        self.direction = direction
        self._rates: Dict[InterfaceKind, float] = {}
        self._rrc_states: Dict[InterfaceKind, RrcState] = {}
        self._energy = 0.0
        self._one_shot = 0.0
        self._last_time = sim.now
        self._power = profile.baseline_w + profile.total_power(
            self._rates, self._rrc_states, direction
        )
        #: Cumulative energy sampled at every state change (Figs 7, 12).
        self.energy_series = TimeSeries("cumulative-energy-J")
        self.energy_series.record(sim.now, 0.0)
        self._trace = _obs.tracer_or_none()
        self._metrics = _obs.metrics_or_none()

    # ------------------------------------------------------------------
    # state updates

    def set_rate(self, kind: InterfaceKind, rate_bytes_per_sec: float) -> None:
        """Update one interface's transfer rate (bytes/s)."""
        if rate_bytes_per_sec < 0:
            raise EnergyModelError("rate must be >= 0")
        self._integrate()
        if rate_bytes_per_sec == 0:
            self._rates.pop(kind, None)
        else:
            self._rates[kind] = rate_bytes_per_sec
        self._recompute()

    def add_rate(self, kind: InterfaceKind, delta: float) -> None:
        """Adjust one interface's rate by ``delta`` bytes/s.

        Used when several flows share an interface: each flow adds its
        own rate change, and the meter sums them.
        """
        self._integrate()
        new = self._rates.get(kind, 0.0) + delta
        if new < -1e-6:
            raise EnergyModelError(f"aggregate rate on {kind} went negative: {new}")
        if new <= 1e-9:
            self._rates.pop(kind, None)
        else:
            self._rates[kind] = new
        self._recompute()

    def set_rrc_state(self, kind: InterfaceKind, state: RrcState) -> None:
        """Update one cellular interface's RRC state."""
        self._integrate()
        self._rrc_states[kind] = state
        self._recompute()

    def add_one_shot(self, joules: float) -> None:
        """Charge a one-shot energy cost (e.g. WiFi activation burst)."""
        if joules < 0:
            raise EnergyModelError("one-shot energy must be >= 0")
        self._integrate()
        self._one_shot += joules
        self.energy_series.record(self.sim.now, self.total_energy)

    # ------------------------------------------------------------------
    # accounting

    def _integrate(self) -> None:
        now = self.sim.now
        if now > self._last_time:
            self._energy += self._power * (now - self._last_time)
            self._last_time = now

    def _recompute(self) -> None:
        self._power = self.profile.baseline_w + self.profile.total_power(
            self._rates, self._rrc_states, self.direction
        )
        self.energy_series.record(self.sim.now, self.total_energy)

    @property
    def power(self) -> float:
        """Current whole-device network power, watts."""
        return self._power

    @property
    def total_energy(self) -> float:
        """Energy accumulated so far, joules (includes one-shot costs)."""
        pending = self._power * (self.sim.now - self._last_time)
        return self._energy + self._one_shot + pending

    def checkpoint(self) -> float:
        """Integrate up to now and return total energy (joules)."""
        self._integrate()
        total = self.total_energy
        self.energy_series.record(self.sim.now, total)
        if self._trace is not None:
            self._trace.emit(
                "energy.checkpoint",
                t=self.sim.now,
                total_j=total,
                power_w=self._power,
            )
        if self._metrics is not None:
            self._metrics.gauge("energy.total_j").set(total)
            self._metrics.gauge("energy.power_w").set(self._power)
        return total

    def rate(self, kind: InterfaceKind) -> float:
        """Current aggregate transfer rate on an interface, bytes/s."""
        return self._rates.get(kind, 0.0)

    def rrc_state(self, kind: InterfaceKind) -> Optional[RrcState]:
        """Last reported RRC state for an interface."""
        return self._rrc_states.get(kind)
