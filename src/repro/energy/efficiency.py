"""Per-byte energy-efficiency math (Figures 3 and 4, Table 2 inputs).

This module answers the offline questions the paper's Energy
Information Base is built from: given steady WiFi and cellular
throughputs, which interface set downloads a byte most cheaply?  And
for a transfer of a given size, where is MPTCP (both interfaces) more
efficient than the best single path once fixed activation overheads are
charged?
"""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Sequence, Tuple

from repro.energy.device import DeviceProfile
from repro.energy.power import Direction
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind
from repro.units import mbps_to_bytes_per_sec


class Strategy(enum.Enum):
    """Which interfaces carry the transfer."""

    WIFI_ONLY = "wifi-only"
    CELLULAR_ONLY = "cellular-only"
    BOTH = "both"


def strategy_power(
    profile: DeviceProfile,
    strategy: Strategy,
    wifi_mbps: float,
    cell_mbps: float,
    cell_kind: InterfaceKind = InterfaceKind.LTE,
    direction: Direction = Direction.DOWN,
) -> float:
    """Steady-state device power for a strategy, watts.

    Throughputs are the rates the strategy would *use*: WiFi-only
    ignores ``cell_mbps`` and vice versa.
    """
    if wifi_mbps < 0 or cell_mbps < 0:
        raise EnergyModelError("throughputs must be non-negative")
    wifi = profile.interfaces[InterfaceKind.WIFI]
    cell = profile.interfaces[cell_kind]
    if strategy is Strategy.WIFI_ONLY:
        return wifi.active_power_w(wifi_mbps, direction)
    if strategy is Strategy.CELLULAR_ONLY:
        return cell.active_power_w(cell_mbps, direction)
    total = wifi.active_power_w(wifi_mbps, direction) + cell.active_power_w(
        cell_mbps, direction
    )
    return total - profile.overlap_saving_w


def strategy_rate_mbps(strategy: Strategy, wifi_mbps: float, cell_mbps: float) -> float:
    """Aggregate download rate of a strategy, Mbps."""
    if strategy is Strategy.WIFI_ONLY:
        return wifi_mbps
    if strategy is Strategy.CELLULAR_ONLY:
        return cell_mbps
    return wifi_mbps + cell_mbps


def per_byte_energy(
    profile: DeviceProfile,
    strategy: Strategy,
    wifi_mbps: float,
    cell_mbps: float,
    cell_kind: InterfaceKind = InterfaceKind.LTE,
    direction: Direction = Direction.DOWN,
) -> float:
    """Steady-state energy per downloaded byte, joules/byte.

    This is the large-transfer limit the EIB is built from (§3.3: the
    amount of data remaining is unknown, so eMPTCP assumes a large
    transfer); fixed activation overheads amortise to zero here.
    Returns ``inf`` when the strategy has zero rate.
    """
    rate = strategy_rate_mbps(strategy, wifi_mbps, cell_mbps)
    if rate <= 0:
        return math.inf
    power = strategy_power(
        profile, strategy, wifi_mbps, cell_mbps, cell_kind, direction
    )
    return power / mbps_to_bytes_per_sec(rate)


def best_strategy(
    profile: DeviceProfile,
    wifi_mbps: float,
    cell_mbps: float,
    cell_kind: InterfaceKind = InterfaceKind.LTE,
    direction: Direction = Direction.DOWN,
) -> Strategy:
    """The per-byte-cheapest strategy at the given throughputs."""
    costs = {
        strategy: per_byte_energy(
            profile, strategy, wifi_mbps, cell_mbps, cell_kind, direction
        )
        for strategy in Strategy
    }
    return min(costs, key=lambda s: costs[s])


def download_energy(
    profile: DeviceProfile,
    strategy: Strategy,
    size_bytes: float,
    wifi_mbps: float,
    cell_mbps: float,
    cell_kind: InterfaceKind = InterfaceKind.LTE,
    include_fixed: bool = True,
) -> float:
    """Total energy to download ``size_bytes``, joules (Figure 4 math).

    Charges each used interface's fixed activation overhead (WiFi
    association burst; cellular promotion + tail) when
    ``include_fixed`` — the term that makes small transfers favour
    WiFi-only and motivates delayed subflow establishment.
    """
    if size_bytes <= 0:
        raise EnergyModelError("size_bytes must be positive")
    rate = strategy_rate_mbps(strategy, wifi_mbps, cell_mbps)
    if rate <= 0:
        return math.inf
    power = strategy_power(profile, strategy, wifi_mbps, cell_mbps, cell_kind)
    duration = size_bytes / mbps_to_bytes_per_sec(rate)
    energy = power * duration
    if include_fixed:
        if strategy in (Strategy.WIFI_ONLY, Strategy.BOTH):
            energy += profile.fixed_overhead(InterfaceKind.WIFI)
        if strategy in (Strategy.CELLULAR_ONLY, Strategy.BOTH):
            energy += profile.fixed_overhead(cell_kind)
    return energy


def efficiency_heatmap(
    profile: DeviceProfile,
    wifi_grid_mbps: Sequence[float],
    cell_grid_mbps: Sequence[float],
    cell_kind: InterfaceKind = InterfaceKind.LTE,
) -> List[List[float]]:
    """Figure 3: per-byte energy of MPTCP (both interfaces) normalised
    by the best single interface, over a (WiFi x cellular) grid.

    Returns rows indexed by cellular throughput, columns by WiFi
    throughput.  Values < 1 mean MPTCP is the most efficient (the dark
    "V" of the paper's grey-scale heat map).
    """
    rows: List[List[float]] = []
    for cell in cell_grid_mbps:
        row: List[float] = []
        for wifi in wifi_grid_mbps:
            both = per_byte_energy(profile, Strategy.BOTH, wifi, cell, cell_kind)
            single = min(
                per_byte_energy(profile, Strategy.WIFI_ONLY, wifi, cell, cell_kind),
                per_byte_energy(profile, Strategy.CELLULAR_ONLY, wifi, cell, cell_kind),
            )
            if math.isinf(single):
                row.append(math.inf)
            else:
                row.append(both / single)
        rows.append(row)
    return rows


def operating_region(
    profile: DeviceProfile,
    size_bytes: float,
    wifi_grid_mbps: Sequence[float],
    cell_grid_mbps: Sequence[float],
    cell_kind: InterfaceKind = InterfaceKind.LTE,
) -> List[Tuple[float, float]]:
    """Figure 4: grid points where MPTCP (both) is strictly the most
    energy-efficient way to complete a ``size_bytes`` transfer,
    including fixed overheads.

    Returns the (wifi_mbps, cell_mbps) points inside the region.
    """
    points: List[Tuple[float, float]] = []
    for cell in cell_grid_mbps:
        for wifi in wifi_grid_mbps:
            costs: Dict[Strategy, float] = {
                s: download_energy(
                    profile, s, size_bytes, wifi, cell, cell_kind, include_fixed=True
                )
                for s in Strategy
            }
            if costs[Strategy.BOTH] < costs[Strategy.WIFI_ONLY] and costs[
                Strategy.BOTH
            ] < costs[Strategy.CELLULAR_ONLY]:
                points.append((wifi, cell))
    return points


def region_boundaries(
    profile: DeviceProfile,
    size_bytes: float,
    wifi_grid_mbps: Sequence[float],
    cell_grid_mbps: Sequence[float],
    cell_kind: InterfaceKind = InterfaceKind.LTE,
) -> Dict[float, Tuple[float, float]]:
    """For each cellular throughput, the (min, max) WiFi throughput of
    the MPTCP-best region — the curves plotted in Figure 4.  Rows with
    no region point are omitted."""
    region = operating_region(
        profile, size_bytes, wifi_grid_mbps, cell_grid_mbps, cell_kind
    )
    by_cell: Dict[float, List[float]] = {}
    for wifi, cell in region:
        by_cell.setdefault(cell, []).append(wifi)
    return {cell: (min(ws), max(ws)) for cell, ws in sorted(by_cell.items())}
