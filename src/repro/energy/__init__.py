"""Energy substrate: interface power models, the cellular RRC state
machine (promotion/tail), device profiles, the integrating energy
meter, and per-byte-efficiency math.

The paper populates its Energy Information Base from a parameterised
multi-interface power model ([17], extending Huang et al. [14] and
Balasubramanian et al. [1]); this package implements a model of the
same form — linear power in throughput per interface, a cross-interface
overlap saving when both radios are up, and 3GPP promotion/tail fixed
overheads — with device profiles calibrated so that the paper's
Figure 1 (fixed overheads) and Table 2 (EIB thresholds) approximately
reproduce.  See DESIGN.md §5 for the calibration.
"""

from repro.energy.device import DEVICES, GALAXY_S3, NEXUS_5, DeviceProfile
from repro.energy.efficiency import (
    Strategy,
    best_strategy,
    download_energy,
    efficiency_heatmap,
    operating_region,
    per_byte_energy,
    strategy_power,
)
from repro.energy.fitting import (
    AffineFit,
    PowerSample,
    fit_affine,
    fit_profile_interface,
    simulate_measurement_campaign,
)
from repro.energy.meter import EnergyMeter
from repro.energy.power import Direction, InterfacePower
from repro.energy.rrc import RrcMachine, RrcParams, RrcState
from repro.energy.serialization import (
    profile_from_dict,
    profile_from_json,
    profile_to_dict,
    profile_to_json,
)

__all__ = [
    "AffineFit",
    "DEVICES",
    "DeviceProfile",
    "Direction",
    "EnergyMeter",
    "GALAXY_S3",
    "InterfacePower",
    "NEXUS_5",
    "PowerSample",
    "RrcMachine",
    "RrcParams",
    "RrcState",
    "Strategy",
    "best_strategy",
    "download_energy",
    "efficiency_heatmap",
    "fit_affine",
    "fit_profile_interface",
    "operating_region",
    "per_byte_energy",
    "profile_from_dict",
    "profile_from_json",
    "profile_to_dict",
    "profile_to_json",
    "simulate_measurement_campaign",
    "strategy_power",
]
