"""Device profiles: the Galaxy S3 and Nexus 5 of Table 1.

Each profile bundles per-interface power parameters, RRC parameters per
cellular technology, the cross-interface overlap saving, and the WiFi
activation energy.  The numeric calibration (DESIGN.md §5) targets:

* Figure 1 fixed overheads: S3 ≈ {WiFi 0.15 J, 3G ≈ 6.4 J, LTE ≈ 12.6 J},
  N5 ≈ {WiFi 0.06 J, 3G ≈ 7.5 J, LTE ≈ 12.7 J};
* Table 2 EIB thresholds: with WiFi base 0.50 W, LTE base 1.288 W and
  overlap saving 0.327 W the WiFi-only threshold lands at ≈ 0.53 x the
  LTE throughput and the LTE-only threshold at ≈ 0.13 x, matching the
  published rows within ~10-20%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.energy.power import Direction, InterfacePower
from repro.energy.rrc import RrcParams, RrcState
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind


@dataclass(frozen=True)
class DeviceSpec:
    """Table 1 metadata (informational; not used by the model)."""

    release_date: str = ""
    app_processor: str = ""
    semiconductor: str = ""
    android_version: str = ""
    kernel_version: str = ""
    wifi_chipset: str = ""


@dataclass(frozen=True)
class DeviceProfile:
    """A device's full energy parameterisation."""

    name: str
    interfaces: Mapping[InterfaceKind, InterfacePower]
    rrc: Mapping[InterfaceKind, RrcParams]
    #: Power saved when two radios are powered simultaneously (shared
    #: platform/CPU cost counted once), watts.
    overlap_saving_w: float
    #: One-shot energy to bring WiFi up (association burst), joules.
    wifi_activation_j: float
    #: Awake-platform power (SoC/OS, screen off) drawn for the whole
    #: duration of an experiment, watts.  The paper measures
    #: whole-device energy, so slow strategies pay this for longer;
    #: it is *not* part of the network power model the EIB is built
    #: from (the paper's EIB likewise uses the parameterised interface
    #: model only).
    baseline_w: float = 0.0
    spec: DeviceSpec = field(default_factory=DeviceSpec)

    def __post_init__(self) -> None:
        if self.overlap_saving_w < 0:
            raise EnergyModelError("overlap_saving_w must be >= 0")
        if self.baseline_w < 0:
            raise EnergyModelError("baseline_w must be >= 0")
        if self.wifi_activation_j < 0:
            raise EnergyModelError("wifi_activation_j must be >= 0")
        if InterfaceKind.WIFI not in self.interfaces:
            raise EnergyModelError("profile must include a WiFi interface")
        for kind in self.rrc:
            if not kind.is_cellular:
                raise EnergyModelError(f"RRC params on non-cellular {kind}")

    def interface_power(
        self,
        kind: InterfaceKind,
        rate_bytes_per_sec: float,
        rrc_state: Optional[RrcState] = None,
        direction: Direction = Direction.DOWN,
    ) -> float:
        """Power drawn by one interface, watts.

        Transfer power dominates when ``rate > 0``; otherwise the RRC
        state decides (promotion power, tail power, or idle).
        """
        if kind not in self.interfaces:
            raise EnergyModelError(f"{self.name} has no {kind} interface")
        params = self.interfaces[kind]
        if rate_bytes_per_sec > 0:
            return params.active_power(rate_bytes_per_sec, direction)
        if kind.is_cellular and rrc_state is not None:
            rrc = self.rrc.get(kind)
            if rrc is None:
                raise EnergyModelError(f"{self.name} lacks RRC params for {kind}")
            if rrc_state is RrcState.PROMOTING:
                return rrc.promotion_power_w
            if rrc_state in (RrcState.ACTIVE, RrcState.TAIL):
                return rrc.tail_power_w
        return params.idle_w

    def total_power(
        self,
        rates: Mapping[InterfaceKind, float],
        rrc_states: Optional[Mapping[InterfaceKind, RrcState]] = None,
        direction: Direction = Direction.DOWN,
    ) -> float:
        """Whole-device network power, watts.

        Sums per-interface power and subtracts the overlap saving when
        two or more interfaces are simultaneously powered above idle.
        ``direction`` applies to all transfer rates (the experiments
        are single-direction bulk transfers, as in the paper).
        """
        rrc_states = rrc_states or {}
        total = 0.0
        powered = 0
        for kind, params in self.interfaces.items():
            p = self.interface_power(
                kind, rates.get(kind, 0.0), rrc_states.get(kind), direction
            )
            total += p
            if p > params.idle_w + 1e-12:
                powered += 1
        if powered >= 2:
            total -= self.overlap_saving_w
        return max(0.0, total)

    def fixed_overhead(self, kind: InterfaceKind) -> float:
        """Figure 1: fixed activation energy for an interface, joules."""
        if kind is InterfaceKind.WIFI:
            return self.wifi_activation_j
        rrc = self.rrc.get(kind)
        if rrc is None:
            raise EnergyModelError(f"{self.name} lacks RRC params for {kind}")
        return rrc.fixed_overhead_joules

    def cellular_kinds(self) -> Dict[InterfaceKind, RrcParams]:
        """The cellular technologies this profile models."""
        return dict(self.rrc)


GALAXY_S3 = DeviceProfile(
    name="Samsung Galaxy S3",
    interfaces={
        InterfaceKind.WIFI: InterfacePower(
            base_w=0.500, per_mbps_w=0.100, idle_w=0.010, per_mbps_up_w=0.210
        ),
        InterfaceKind.LTE: InterfacePower(
            base_w=1.288, per_mbps_w=0.080, idle_w=0.012, per_mbps_up_w=0.440
        ),
        InterfaceKind.THREEG: InterfacePower(
            base_w=0.800, per_mbps_w=0.120, idle_w=0.012, per_mbps_up_w=0.550
        ),
    },
    rrc={
        InterfaceKind.LTE: RrcParams(
            promotion_time=0.26,
            promotion_power_w=1.21,
            tail_time=11.576,
            tail_power_w=1.06,
        ),
        InterfaceKind.THREEG: RrcParams(
            promotion_time=2.0,
            promotion_power_w=0.80,
            tail_time=8.0,
            tail_power_w=0.60,
        ),
    },
    overlap_saving_w=0.327,
    wifi_activation_j=0.15,
    baseline_w=0.25,
    spec=DeviceSpec(
        release_date="May 2012",
        app_processor="Qualcomm MSM8960",
        semiconductor="28nm LP",
        android_version="4.1.2 (Jelly Bean)",
        kernel_version="3.0.48",
        wifi_chipset="Broadcom BCM4334",
    ),
)

NEXUS_5 = DeviceProfile(
    name="LG Nexus 5",
    interfaces={
        InterfaceKind.WIFI: InterfacePower(
            base_w=0.450, per_mbps_w=0.090, idle_w=0.008, per_mbps_up_w=0.190
        ),
        InterfaceKind.LTE: InterfacePower(
            base_w=1.380, per_mbps_w=0.072, idle_w=0.011, per_mbps_up_w=0.410
        ),
        InterfaceKind.THREEG: InterfacePower(
            base_w=0.850, per_mbps_w=0.110, idle_w=0.011, per_mbps_up_w=0.520
        ),
    },
    rrc={
        InterfaceKind.LTE: RrcParams(
            promotion_time=0.30,
            promotion_power_w=1.29,
            tail_time=11.0,
            tail_power_w=1.13,
        ),
        InterfaceKind.THREEG: RrcParams(
            promotion_time=1.8,
            promotion_power_w=0.90,
            tail_time=9.0,
            tail_power_w=0.65,
        ),
    },
    overlap_saving_w=0.350,
    wifi_activation_j=0.06,
    baseline_w=0.22,
    spec=DeviceSpec(
        release_date="Nov 2013",
        app_processor="Qualcomm 8974-AA",
        semiconductor="28nm HPM",
        android_version="4.4.4 (KitKat)",
        kernel_version="3.4.0",
        wifi_chipset="Broadcom BCM4339",
    ),
)

#: Registry of device profiles by short name.
DEVICES: Dict[str, DeviceProfile] = {
    "galaxy-s3": GALAXY_S3,
    "nexus-5": NEXUS_5,
}
