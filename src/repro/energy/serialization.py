"""Device-profile serialisation.

Profiles are plain data; serialising them to JSON lets users version
their own measured devices (e.g. one produced with
:mod:`repro.energy.fitting`) and load them back without touching code::

    text = profile_to_json(my_profile)
    profile = profile_from_json(text)
    eib = EnergyInformationBase(profile)
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.energy.device import DeviceProfile, DeviceSpec
from repro.energy.power import InterfacePower
from repro.energy.rrc import RrcParams
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind


def profile_to_dict(profile: DeviceProfile) -> Dict[str, Any]:
    """A JSON-ready dictionary for one device profile."""
    return {
        "name": profile.name,
        "interfaces": {
            kind.value: {
                "base_w": p.base_w,
                "per_mbps_w": p.per_mbps_w,
                "per_mbps_up_w": p.per_mbps_up_w,
                "idle_w": p.idle_w,
            }
            for kind, p in profile.interfaces.items()
        },
        "rrc": {
            kind.value: {
                "promotion_time": r.promotion_time,
                "promotion_power_w": r.promotion_power_w,
                "tail_time": r.tail_time,
                "tail_power_w": r.tail_power_w,
                "active_hold": r.active_hold,
            }
            for kind, r in profile.rrc.items()
        },
        "overlap_saving_w": profile.overlap_saving_w,
        "wifi_activation_j": profile.wifi_activation_j,
        "baseline_w": profile.baseline_w,
        "spec": {
            "release_date": profile.spec.release_date,
            "app_processor": profile.spec.app_processor,
            "semiconductor": profile.spec.semiconductor,
            "android_version": profile.spec.android_version,
            "kernel_version": profile.spec.kernel_version,
            "wifi_chipset": profile.spec.wifi_chipset,
        },
    }


def profile_from_dict(data: Dict[str, Any]) -> DeviceProfile:
    """Reconstruct a profile from :func:`profile_to_dict` output."""
    try:
        interfaces = {
            InterfaceKind(kind): InterfacePower(
                base_w=params["base_w"],
                per_mbps_w=params["per_mbps_w"],
                per_mbps_up_w=params.get("per_mbps_up_w"),
                idle_w=params.get("idle_w", 0.0),
            )
            for kind, params in data["interfaces"].items()
        }
        rrc = {
            InterfaceKind(kind): RrcParams(
                promotion_time=params["promotion_time"],
                promotion_power_w=params["promotion_power_w"],
                tail_time=params["tail_time"],
                tail_power_w=params["tail_power_w"],
                active_hold=params.get("active_hold", 0.2),
            )
            for kind, params in data.get("rrc", {}).items()
        }
        spec = DeviceSpec(**data.get("spec", {}))
        return DeviceProfile(
            name=data["name"],
            interfaces=interfaces,
            rrc=rrc,
            overlap_saving_w=data.get("overlap_saving_w", 0.0),
            wifi_activation_j=data.get("wifi_activation_j", 0.0),
            baseline_w=data.get("baseline_w", 0.0),
            spec=spec,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise EnergyModelError(f"malformed profile data: {exc}") from exc


def profile_to_json(profile: DeviceProfile, indent: int = 2) -> str:
    """Serialise a profile to JSON text."""
    return json.dumps(profile_to_dict(profile), indent=indent)


def profile_from_json(text: str) -> DeviceProfile:
    """Parse a profile from JSON text."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EnergyModelError(f"invalid profile JSON: {exc}") from exc
    return profile_from_dict(data)
