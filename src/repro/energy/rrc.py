"""The 3GPP radio-resource-control (RRC) state machine (§2.3).

Cellular interfaces cannot transmit from their low-power idle state:
they first *promote* to a high-power state (taking promotion_time and
burning promotion_power), and after the last transmission they linger
in the high-power *tail* for tail_time before demoting.  Promotion and
tail together are the "fixed energy overheads" of Figure 1 — the very
thing eMPTCP's delayed subflow establishment exists to avoid.

States::

    IDLE --activity--> PROMOTING --(promotion_time)--> ACTIVE
    ACTIVE --(active_hold without activity)--> TAIL
    TAIL --activity--> ACTIVE
    TAIL --(tail_time)--> IDLE

``on_activity`` returns the extra latency before data can actually flow
(the remaining promotion time), which the TCP layer adds to handshake
and round scheduling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import obs as _obs
from repro.errors import EnergyModelError
from repro.sim.engine import EventHandle, Simulator


class RrcState(enum.Enum):
    """RRC machine states."""

    IDLE = "idle"
    PROMOTING = "promoting"
    ACTIVE = "active"
    TAIL = "tail"

    @property
    def is_powered(self) -> bool:
        """True when the radio is drawing more than idle power."""
        return self is not RrcState.IDLE


@dataclass(frozen=True)
class RrcParams:
    """Promotion/tail parameters for one cellular technology.

    ``active_hold`` is the inactivity window after which the machine
    considers the transmission over and enters the tail; it models the
    gap between the last data and the start of the 3GPP inactivity
    timer.
    """

    promotion_time: float
    promotion_power_w: float
    tail_time: float
    tail_power_w: float
    active_hold: float = 0.2

    def __post_init__(self) -> None:
        if min(self.promotion_time, self.tail_time, self.active_hold) < 0:
            raise EnergyModelError("RRC durations must be non-negative")
        if min(self.promotion_power_w, self.tail_power_w) < 0:
            raise EnergyModelError("RRC powers must be non-negative")

    @property
    def fixed_overhead_joules(self) -> float:
        """Energy of one full promotion + tail cycle (Figure 1)."""
        return (
            self.promotion_time * self.promotion_power_w
            + self.tail_time * self.tail_power_w
        )


StateListener = Callable[[float, RrcState], None]


class RrcMachine:
    """One cellular interface's RRC state machine."""

    def __init__(
        self,
        sim: Simulator,
        params: RrcParams,
    ):
        self.sim = sim
        self.params = params
        self.state = RrcState.IDLE
        self.promotions = 0
        self._listeners: List[StateListener] = []
        self._timer: Optional[EventHandle] = None
        self._promotion_ends: float = 0.0
        self._entered_state_at = sim.now
        self._trace = _obs.tracer_or_none()
        self._metrics = _obs.metrics_or_none()

    def on_state_change(self, listener: StateListener) -> None:
        """Subscribe to state transitions (drives the energy meter)."""
        self._listeners.append(listener)

    def _transition(self, state: RrcState) -> None:
        if state is self.state:
            return
        previous = self.state
        dwell = self.sim.now - self._entered_state_at
        self.state = state
        self._entered_state_at = self.sim.now
        if self._trace is not None:
            self._trace.emit(
                "rrc.transition",
                t=self.sim.now,
                **{"from": previous.value, "to": state.value, "dwell_s": dwell},
            )
        if self._metrics is not None:
            self._metrics.counter("rrc.transitions").inc()
            self._metrics.counter(f"rrc.dwell_s.{previous.value}").inc(dwell)
        for listener in list(self._listeners):
            listener(self.sim.now, state)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def on_activity(self, now: float) -> float:
        """Record network activity; return extra latency before data
        can flow (remaining promotion time, 0 if already active)."""
        if self.state is RrcState.IDLE:
            self.promotions += 1
            self._transition(RrcState.PROMOTING)
            self._promotion_ends = now + self.params.promotion_time
            self._cancel_timer()
            self._timer = self.sim.schedule(self.params.promotion_time, self._promoted)
            return self.params.promotion_time
        if self.state is RrcState.PROMOTING:
            return max(0.0, self._promotion_ends - now)
        # ACTIVE or TAIL: (re)enter ACTIVE and re-arm the hold timer.
        self._transition(RrcState.ACTIVE)
        self._cancel_timer()
        self._timer = self.sim.schedule(self.params.active_hold, self._hold_expired)
        return 0.0

    def _promoted(self) -> None:
        self._timer = None
        self._transition(RrcState.ACTIVE)
        self._timer = self.sim.schedule(self.params.active_hold, self._hold_expired)

    def _hold_expired(self) -> None:
        self._timer = None
        self._transition(RrcState.TAIL)
        self._timer = self.sim.schedule(self.params.tail_time, self._tail_done)

    def _tail_done(self) -> None:
        self._timer = None
        self._transition(RrcState.IDLE)

    @property
    def is_idle(self) -> bool:
        """True when fully demoted (no residual tail energy pending)."""
        return self.state is RrcState.IDLE
