"""Delayed subflow establishment (§3.5), engine-agnostic.

Small transfers should never pay the cellular promotion and tail.  The
cellular subflow is therefore *not* joined at connection setup.  It is
established when either trigger fires, both gated by an
energy-efficiency veto:

* **κ bytes** have arrived over WiFi (default 1 MB — below that MPTCP
  is rarely more efficient than single-path TCP, Figure 4); or
* the **τ timer** expires (default 3 s), which catches WiFi paths so
  slow that κ might never be reached.

The veto: establishment is postponed while the predicted WiFi
throughput makes WiFi-only more energy-efficient than both interfaces
(per the EIB), and while the connection is idle (no packets for one
estimated RTT) — some applications hold connections open after the
transfer (HTTP persistent connections), and promoting LTE for an idle
connection would be pure waste.

Equation (1) gives the lower bound on τ: the timer must allow the WiFi
subflow to exit slow start and produce φ throughput samples —
:func:`minimum_tau` implements it.

All triggers and queries go through a
:class:`~repro.control.port.DataPlanePort`, so the same class serves
the fluid and packet engines (the historical fluid-only entry point,
:class:`repro.core.delay.DelayedSubflowEstablishment`, is now a thin
adapter over this one).
"""

from __future__ import annotations

import math
from typing import Optional

from repro import obs as _obs
from repro.control.port import DelayPort, SubflowLike
from repro.core.config import EMPTCPConfig
from repro.core.controller import PathUsageController
from repro.core.predictor import BandwidthPredictor
from repro.errors import ConfigurationError
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.tcp.congestion import DEFAULT_INIT_CWND_SEGMENTS, DEFAULT_MSS


def minimum_tau(
    wifi_bandwidth_bytes_per_sec: float,
    wifi_rtt: float,
    required_samples: int,
    initial_window_bytes: float = DEFAULT_INIT_CWND_SEGMENTS * DEFAULT_MSS,
) -> float:
    """Equation (1): the smallest admissible τ.

    τ >= R_W x ( log2( (B_W x R_W + W_init) / W_init ) + φ )

    — the slow-start time to reach the path bandwidth plus φ sampling
    intervals of one RTT each.
    """
    if wifi_bandwidth_bytes_per_sec <= 0 or wifi_rtt <= 0:
        raise ConfigurationError("bandwidth and RTT must be positive")
    if required_samples < 1:
        raise ConfigurationError("required_samples must be >= 1")
    if initial_window_bytes <= 0:
        raise ConfigurationError("initial_window_bytes must be positive")
    bdp = wifi_bandwidth_bytes_per_sec * wifi_rtt
    slow_start_rounds = math.log2((bdp + initial_window_bytes) / initial_window_bytes)
    return wifi_rtt * (slow_start_rounds + required_samples)


class DelayedEstablishment:
    """Manages when (and whether) the cellular subflow is joined."""

    def __init__(
        self,
        sim: Simulator,
        port: DelayPort,
        config: EMPTCPConfig,
        predictor: BandwidthPredictor,
        controller: PathUsageController,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
    ):
        self.sim = sim
        self.port = port
        self.config = config
        self.predictor = predictor
        self.controller = controller
        self.cell_kind = cell_kind
        self.established_subflow: Optional[SubflowLike] = None
        self.wifi_bytes = 0.0
        self.timer_expirations = 0
        self.postponements = 0
        self.established_at: Optional[float] = None
        self.trigger: Optional[str] = None
        self._timer = Timer(sim, self._timer_expired)
        self._trace = _obs.tracer_or_none()
        self._prof = _obs.profiler_or_none()

    def start(self) -> None:
        """Arm the τ timer and begin watching WiFi deliveries."""
        self.port.on_delivery(self._on_delivery)
        self._timer.start(self.config.tau_seconds)

    def stop(self) -> None:
        """Disarm the timer (connection closing / transfer complete)."""
        self._timer.cancel()

    @property
    def done(self) -> bool:
        """True once the cellular subflow has been established."""
        return self.established_subflow is not None

    # ------------------------------------------------------------------
    # triggers

    def _on_delivery(self, kind: InterfaceKind, delivered: float) -> None:
        if kind.is_wifi:
            self.wifi_bytes += delivered
        if self.done:
            return
        if self.port.source_exhausted:
            # The transfer drained before τ: there is nothing for a
            # cellular subflow to speed up.  Re-arm the timer so τ
            # measures a *continuous* busy period — this is what keeps
            # eMPTCP off LTE across a whole multi-object page load
            # (§5.4) while still catching the slow-WiFi case the timer
            # exists for (§3.5).
            self._timer.start(self.config.tau_seconds)
            return
        if self.wifi_bytes >= self.config.kappa_bytes:
            self._evaluate(trigger="kappa")

    def _timer_expired(self) -> None:
        if self.done:
            return
        self.timer_expirations += 1
        if self.port.is_idle:
            # §3.5: never promote cellular for an idle connection; check
            # again after another τ.
            self.postponements += 1
            self._timer.start(self.config.tau_seconds)
            return
        self._evaluate(trigger="tau")

    def _evaluate(self, trigger: str) -> None:
        """Common gate: establish unless WiFi-only is predicted to be
        more energy-efficient than using both interfaces."""
        prof = self._prof
        if prof is not None:
            with prof.span("control.delay.evaluate"):
                self._evaluate_inner(trigger)
        else:
            self._evaluate_inner(trigger)

    def _evaluate_inner(self, trigger: str) -> None:
        if self.done:
            return
        if self.predictor.sample_count(InterfaceKind.WIFI) < max(
            1, self.config.required_samples // 2
        ):
            # Equation (1): estimates are only meaningful after enough
            # samples.  Establishing LTE costs an irreversible
            # promotion + tail, so an under-sampled (slow-start-biased)
            # WiFi estimate postpones rather than commits.
            self._postpone(trigger)
            return
        if self._wifi_only_preferred():
            self._postpone(trigger)
            return
        self.trigger = trigger
        self._timer.cancel()
        self.established_at = self.sim.now
        if self._trace is not None:
            self._trace.emit(
                "delay.trigger",
                t=self.sim.now,
                trigger=trigger,
                action="established",
                wifi_bytes=self.wifi_bytes,
            )
        self.established_subflow = self.port.join_cellular()

    def _postpone(self, trigger: str) -> None:
        self.postponements += 1
        if self._trace is not None:
            self._trace.emit(
                "delay.trigger",
                t=self.sim.now,
                trigger=trigger,
                action="postponed",
                wifi_bytes=self.wifi_bytes,
            )
        if trigger == "tau":
            self._timer.start(self.config.tau_seconds)

    def _wifi_only_preferred(self) -> bool:
        wifi = self.predictor.predict_mbps(InterfaceKind.WIFI)
        cell = self.predictor.predict_mbps(self.cell_kind)
        _cell_only, wifi_only_thr = self.controller.eib.thresholds(cell)
        return wifi >= wifi_only_thr


__all__ = ["DelayedEstablishment", "minimum_tau"]
