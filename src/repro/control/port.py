"""The control-plane/data-plane seam.

:class:`DataPlanePort` is everything the eMPTCP control plane is
allowed to ask of a transport engine.  The attribute names on
:class:`SubflowLike` deliberately match the fluid
:class:`~repro.mptcp.subflow.Subflow`, so fluid subflows satisfy the
protocol directly and the packet engine provides a thin view object —
either way the same :class:`~repro.core.sampler.ThroughputSampler`
drives the §3.2 predictor.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from repro.net.interface import InterfaceKind

#: Delivery callback: ``(interface kind, bytes delivered)`` per event.
DeliveryListener = Callable[[InterfaceKind, float], None]


@runtime_checkable
class SubflowLike(Protocol):
    """What the control plane needs to observe about one subflow."""

    name: str

    @property
    def interface_kind(self) -> InterfaceKind:
        """The interface this subflow runs over."""
        ...

    @property
    def established(self) -> bool:
        """Handshake finished; the subflow can carry data."""
        ...

    @property
    def suspended(self) -> bool:
        """Deactivated by the controller (MP_PRIO backup / paused)."""
        ...

    @property
    def sending(self) -> bool:
        """Data currently in flight (distinguishes app-limited idle
        windows from genuine zero-throughput samples, §3.2)."""
        ...

    @property
    def bytes_delivered(self) -> float:
        """Cumulative bytes this subflow delivered to the connection."""
        ...

    @property
    def handshake_rtt(self) -> Optional[float]:
        """RTT estimate from connection setup; sets the sampling
        interval δ (§3.2).  None until established."""
        ...


@runtime_checkable
class DelayPort(Protocol):
    """The port subset §3.5 delayed establishment consumes.

    :class:`DataPlanePort` is a superset; the fluid compatibility
    adapter in :mod:`repro.core.delay` implements only this slice.
    """

    def join_cellular(self) -> SubflowLike:
        """Establish the cellular subflow (§3.5's commit action)."""
        ...

    def on_delivery(self, listener: DeliveryListener) -> None:
        """Subscribe to per-interface delivery events (drives κ)."""
        ...

    @property
    def is_idle(self) -> bool:
        """No data moving for roughly one RTT (the §3.5 idle veto)."""
        ...

    @property
    def source_exhausted(self) -> bool:
        """The application has no more bytes queued."""
        ...

    @property
    def completed(self) -> bool:
        """The transfer finished; control decisions are moot."""
        ...


@runtime_checkable
class DataPlanePort(DelayPort, Protocol):
    """The full command/query set the control plane issues to an engine."""

    def subflow(self, kind: InterfaceKind) -> Optional[SubflowLike]:
        """The subflow running over ``kind``, or None if never joined."""
        ...

    def set_subflow_usage(self, kind: InterfaceKind, in_use: bool) -> None:
        """Activate/deactivate the ``kind`` subflow (MP_PRIO, §3.4),
        applying the engine's §3.6 re-use tweaks on resume."""
        ...


__all__ = ["DataPlanePort", "DelayPort", "DeliveryListener", "SubflowLike"]
