"""repro.control — the engine-agnostic eMPTCP control plane.

The paper's four mechanisms (§3.2 bandwidth predictor, §3.3 energy
information base, §3.4 path-usage controller, §3.5 delayed subflow
establishment) never touch packets: they consume throughput samples
and idle/byte queries and emit join/suspend/resume commands.  This
package holds the one copy of that logic, driven through the small
:class:`~repro.control.port.DataPlanePort` protocol:

* :mod:`repro.control.port` — the seam: what a data plane must expose
  (:class:`SubflowLike` views, join-cellular, MP_PRIO-style usage
  toggles, idle/exhausted/completed queries);
* :mod:`repro.control.delay` — §3.5 delayed establishment (κ bytes /
  τ timer / efficiency + idle vetoes) and equation (1)'s
  :func:`minimum_tau`;
* :mod:`repro.control.plane` — :class:`ControlPlane`, composing
  predictor + EIB + controller + delayed establishment over a port.

Two data planes implement the port: the fluid-model
:class:`~repro.core.emptcp.EMPTCPConnection` and the segment-level
:class:`~repro.packet.emptcp.PacketEmptcp`.
"""

from repro.control.delay import DelayedEstablishment, minimum_tau
from repro.control.plane import ControlPlane
from repro.control.port import (
    DataPlanePort,
    DelayPort,
    DeliveryListener,
    SubflowLike,
)

__all__ = [
    "ControlPlane",
    "DataPlanePort",
    "DelayPort",
    "DelayedEstablishment",
    "DeliveryListener",
    "SubflowLike",
    "minimum_tau",
]
