"""The assembled eMPTCP control plane (the paper's Figure 2, engine-free).

:class:`ControlPlane` owns the four §3 components and drives a
:class:`~repro.control.port.DataPlanePort`:

* the **bandwidth predictor** samples each subflow the data plane
  reports established (via the shared
  :class:`~repro.core.sampler.ThroughputSampler`);
* the **delayed-establishment module** decides when the port's
  ``join_cellular`` fires (κ bytes / τ timer / efficiency + idle
  vetoes);
* once the cellular subflow is up, the **path-usage controller** runs
  every ``decision_interval``, consulting predictor + **EIB**, and
  applies its hysteresis decisions through ``set_subflow_usage``.

The data plane stays in charge of transport mechanics (scheduling,
retransmission, the §3.6 re-use tweaks on resume) and of telling the
plane when subflows come up; the plane stays in charge of *policy*.
"""

from __future__ import annotations

from typing import Optional

from repro import obs as _obs
from repro.control.delay import DelayedEstablishment
from repro.control.port import DataPlanePort, SubflowLike
from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.eib import EnergyInformationBase, cached_eib
from repro.core.predictor import BandwidthPredictor
from repro.energy.device import DeviceProfile
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class ControlPlane:
    """One copy of the paper's control logic, over any data plane."""

    def __init__(
        self,
        sim: Simulator,
        port: DataPlanePort,
        config: Optional[EMPTCPConfig],
        profile: DeviceProfile,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
        direction: Direction = Direction.DOWN,
        eib: Optional[EnergyInformationBase] = None,
    ):
        if not cell_kind.is_cellular:
            raise ConfigurationError("cell_kind must be cellular")
        self.sim = sim
        self.port = port
        self.config = config or EMPTCPConfig()
        self.profile = profile
        self.cell_kind = cell_kind
        self.direction = direction
        self.predictor = BandwidthPredictor(sim, self.config)
        self.eib = eib or cached_eib(profile, cell_kind, direction)
        self.controller = PathUsageController(
            self.config,
            self.eib,
            self.predictor,
            cell_kind=cell_kind,
            initial=PathDecision.WIFI_ONLY,
        )
        self.delayed = DelayedEstablishment(
            sim,
            port,
            self.config,
            self.predictor,
            self.controller,
            cell_kind=cell_kind,
        )
        self._decision_loop = PeriodicProcess(
            sim, self.config.decision_interval, self._control_tick
        )
        self._prof = _obs.profiler_or_none()

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Arm §3.5; the decision loop waits for the cellular join."""
        self.delayed.start()

    def stop(self) -> None:
        """Halt decisions, sampling, and the τ timer."""
        self._decision_loop.stop()
        self.predictor.stop()
        self.delayed.stop()

    @property
    def decision(self) -> PathDecision:
        """The controller's current decision."""
        return self.controller.current

    # ------------------------------------------------------------------
    # data-plane notifications

    def subflow_established(self, subflow: SubflowLike) -> None:
        """The data plane reports a subflow up: start sampling it; a
        cellular subflow additionally starts the periodic decisions."""
        self.predictor.attach_subflow(subflow)
        if subflow.interface_kind.is_cellular:
            # Both interfaces are in play from here on; start the
            # periodic path-usage decisions.
            self.controller.current = PathDecision.BOTH
            self._decision_loop.start()

    # ------------------------------------------------------------------
    # the §3.4 decision loop

    def _control_tick(self) -> None:
        prof = self._prof
        if prof is not None:
            with prof.span("control.decision"):
                self._control_tick_inner()
        else:
            self._control_tick_inner()

    def _control_tick_inner(self) -> None:
        if self.port.completed:
            self._decision_loop.stop()
            return
        if (
            self.predictor.sample_count(self.cell_kind)
            < self.config.required_samples
        ):
            # The cellular subflow was just established: keep probing
            # it until φ samples exist (equation (1)'s requirement)
            # instead of suspending it on the initial-bandwidth guess.
            decision = PathDecision.BOTH
            self.controller.current = decision
        else:
            decision = self.controller.decide(now=self.sim.now)
        self._apply(decision)

    def _apply(self, decision: PathDecision) -> None:
        wifi_sf = self.port.subflow(InterfaceKind.WIFI)
        cell_sf = self.port.subflow(self.cell_kind)
        if wifi_sf is None or cell_sf is None:
            return
        if not (wifi_sf.established and cell_sf.established):
            return
        want_wifi = decision in (PathDecision.WIFI_ONLY, PathDecision.BOTH)
        want_cell = decision in (PathDecision.CELLULAR_ONLY, PathDecision.BOTH)
        self._set_usage(wifi_sf, InterfaceKind.WIFI, want_wifi)
        self._set_usage(cell_sf, self.cell_kind, want_cell)

    def _set_usage(
        self, subflow: SubflowLike, kind: InterfaceKind, in_use: bool
    ) -> None:
        if in_use and subflow.suspended:
            self.port.set_subflow_usage(kind, True)
        elif not in_use and not subflow.suspended:
            self.port.set_subflow_usage(kind, False)


__all__ = ["ControlPlane"]
