"""Statistics and reporting helpers used by the evaluation harness."""

from repro.analysis.categorize import Category, categorize, categorize_run
from repro.analysis.stats import (
    WhiskerSummary,
    mean,
    quartiles,
    sample_std,
    sem,
    whisker_summary,
)

__all__ = [
    "Category",
    "WhiskerSummary",
    "categorize",
    "categorize_run",
    "mean",
    "quartiles",
    "sample_std",
    "sem",
    "whisker_summary",
]
