"""Statistics and reporting helpers used by the evaluation harness."""

from repro.analysis.categorize import Category, categorize, categorize_run
from repro.analysis.export import (
    results_to_csv,
    results_to_json,
    run_result_to_dict,
    timeseries_to_csv,
)
from repro.analysis.report import (
    format_table,
    print_protocol_summary,
    protocol_summary_rows,
    relative_to,
)
from repro.analysis.stats import (
    WhiskerSummary,
    mean,
    quartiles,
    sample_std,
    sem,
    whisker_summary,
)

__all__ = [
    "Category",
    "WhiskerSummary",
    "categorize",
    "categorize_run",
    "format_table",
    "mean",
    "print_protocol_summary",
    "protocol_summary_rows",
    "quartiles",
    "relative_to",
    "results_to_csv",
    "results_to_json",
    "run_result_to_dict",
    "sample_std",
    "sem",
    "timeseries_to_csv",
    "whisker_summary",
]
