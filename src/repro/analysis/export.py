"""Result export: CSV/JSON serialisation for plotting outside Python.

The harness's :class:`~repro.experiments.scenario.RunResult` carries
time series (accumulated energy, per-interface rates) that a downstream
user will want in their plotting tool of choice; these helpers write
them in boring, stable formats.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError
from repro.experiments.scenario import RunResult
from repro.sim.trace import TimeSeries


def timeseries_to_csv(series: Sequence[TimeSeries], time_label: str = "time_s") -> str:
    """Merge time series into one CSV (step-resampled on the union of
    sample times).  Columns are named after each series' ``name``."""
    if not series:
        raise ConfigurationError("no series to export")
    times = sorted({t for s in series for t in s.times})
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([time_label] + [s.name or f"series{i}" for i, s in enumerate(series)])
    for t in times:
        row: List[object] = [t]
        for s in series:
            try:
                row.append(s.value_at(t))
            except Exception:
                row.append("")
        writer.writerow(row)
    return out.getvalue()


def run_result_to_dict(result: RunResult, include_series: bool = False) -> Dict:
    """A JSON-ready summary of one run."""
    out: Dict = {
        "protocol": result.protocol,
        "scenario": result.scenario,
        "seed": result.seed,
        "download_time_s": result.download_time,
        "bytes_received": result.bytes_received,
        "energy_j": result.energy_j,
        "energy_at_completion_j": result.energy_at_completion_j,
        "joules_per_byte": result.joules_per_byte,
        "measured_wifi_mbps": result.measured_wifi_mbps,
        "measured_cell_mbps": result.measured_cell_mbps,
        "diagnostics": dict(result.diagnostics),
    }
    if include_series:
        out["energy_series"] = _series_points(result.energy_series)
        out["wifi_rate_series"] = _series_points(result.wifi_rate_series)
        out["cell_rate_series"] = _series_points(result.cell_rate_series)
    return out


def _series_points(series: TimeSeries) -> List[List[float]]:
    return [[t, v] for t, v in series]


def results_to_json(
    results: Iterable[RunResult], include_series: bool = False, indent: int = 2
) -> str:
    """Serialise many runs as a JSON array."""
    return json.dumps(
        [run_result_to_dict(r, include_series) for r in results], indent=indent
    )


def results_to_csv(results: Iterable[RunResult]) -> str:
    """One CSV row per run (summary fields only)."""
    rows = [run_result_to_dict(r) for r in results]
    if not rows:
        raise ConfigurationError("no results to export")
    fields = [k for k in rows[0] if k != "diagnostics"]
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=fields, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()
