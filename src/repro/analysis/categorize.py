"""Good/Bad trace categorisation for the in-the-wild study (§5.1).

The paper groups collected traces into four categories based on the
measured WiFi and LTE throughput qualities, with 8 Mbps as the
good/bad boundary (Figure 14).
"""

from __future__ import annotations

import enum

#: The paper's good/bad throughput boundary, Mbps.
GOOD_THRESHOLD_MBPS = 8.0


class Category(enum.Enum):
    """The four quadrants of Figure 14 (WiFi quality, LTE quality)."""

    BAD_BAD = "Bad WiFi & Bad LTE"
    BAD_GOOD = "Bad WiFi & Good LTE"
    GOOD_BAD = "Good WiFi & Bad LTE"
    GOOD_GOOD = "Good WiFi & Good LTE"


def categorize(
    wifi_mbps: float,
    lte_mbps: float,
    threshold_mbps: float = GOOD_THRESHOLD_MBPS,
) -> Category:
    """Classify one trace by its measured throughputs."""
    wifi_good = wifi_mbps >= threshold_mbps
    lte_good = lte_mbps >= threshold_mbps
    if wifi_good and lte_good:
        return Category.GOOD_GOOD
    if wifi_good:
        return Category.GOOD_BAD
    if lte_good:
        return Category.BAD_GOOD
    return Category.BAD_BAD


def categorize_run(result, threshold_mbps: float = GOOD_THRESHOLD_MBPS) -> Category:
    """Classify a :class:`~repro.experiments.scenario.RunResult` by the
    path throughputs measured during the run."""
    return categorize(
        result.measured_wifi_mbps, result.measured_cell_mbps, threshold_mbps
    )
