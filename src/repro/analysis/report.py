"""Plain-text tables for benchmark output and EXPERIMENTS.md.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import mean, sem
from repro.experiments.scenario import RunResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width text table."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [
        [h] for h in headers
    ]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def protocol_summary_rows(
    results: Dict[str, List[RunResult]],
) -> List[List[str]]:
    """Rows of (protocol, energy ± sem, time ± sem, GB downloaded)."""
    rows: List[List[str]] = []
    for protocol, runs in results.items():
        energies = [r.energy_j for r in runs]
        times = [r.download_time for r in runs if r.download_time is not None]
        data = [r.bytes_received for r in runs]
        row = [
            protocol,
            f"{mean(energies):8.1f} ± {sem(energies):5.1f} J",
            (
                f"{mean(times):8.1f} ± {sem(times):5.1f} s"
                if times
                else "   (fixed window)"
            ),
            f"{mean(data) / 1e6:8.1f} MB",
        ]
        rows.append(row)
    return rows


def print_protocol_summary(title: str, results: Dict[str, List[RunResult]]) -> str:
    """Format one figure's protocol comparison as text."""
    table = format_table(
        ["protocol", "energy", "download time", "downloaded"],
        protocol_summary_rows(results),
    )
    return f"{title}\n{table}"


def relative_to(
    results: Dict[str, List[RunResult]], baseline: str, metric: str
) -> Dict[str, float]:
    """Per-protocol mean of ``metric`` relative to a baseline protocol
    (1.0 == parity), e.g. ``relative_to(res, 'mptcp', 'energy_j')``."""
    base_runs = results[baseline]
    base = mean([getattr(r, metric) for r in base_runs])
    return {
        protocol: mean([getattr(r, metric) for r in runs]) / base
        for protocol, runs in results.items()
    }
