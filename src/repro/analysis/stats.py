"""Statistics used by the paper's figures.

* Figures 8, 10, 13 report sample means with horizontal bars of twice
  the standard error of the mean (SEM).  The paper's equation (2)
  contains a typo — it omits the square on ``(x_i - x̄)`` — and we
  implement the standard (squared) definition.
* Figures 15 and 16 are whisker plots: Q1 / median / Q3, with outliers
  defined as points outside ``[Q1 - 1.5 IQR, Q3 + 1.5 IQR]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def mean(xs: Sequence[float]) -> float:
    """Sample mean; raises on an empty sample."""
    if not xs:
        raise ConfigurationError("mean of empty sample")
    return sum(xs) / len(xs)


def sample_std(xs: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; 0 for n == 1."""
    n = len(xs)
    if n == 0:
        raise ConfigurationError("std of empty sample")
    if n == 1:
        return 0.0
    x_bar = mean(xs)
    return math.sqrt(sum((x - x_bar) ** 2 for x in xs) / (n - 1))


def sem(xs: Sequence[float]) -> float:
    """Standard error of the mean: s / sqrt(n)."""
    return sample_std(xs) / math.sqrt(len(xs))


def _percentile(sorted_xs: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (same convention as numpy)."""
    n = len(sorted_xs)
    if n == 1:
        return sorted_xs[0]
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    if sorted_xs[lo] == sorted_xs[hi]:
        # Skip the interpolation arithmetic: with subnormal values the
        # weighted sum can round below both endpoints.
        return sorted_xs[lo]
    return sorted_xs[lo] * (1 - frac) + sorted_xs[hi] * frac


def quartiles(xs: Sequence[float]) -> Tuple[float, float, float]:
    """(Q1, median, Q3) of a sample."""
    if not xs:
        raise ConfigurationError("quartiles of empty sample")
    s = sorted(xs)
    return _percentile(s, 0.25), _percentile(s, 0.5), _percentile(s, 0.75)


@dataclass(frozen=True)
class WhiskerSummary:
    """Everything a Figure 15/16-style whisker plot shows."""

    n: int
    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]

    @property
    def iqr(self) -> float:
        """Inter-quartile range, Q3 - Q1."""
        return self.q3 - self.q1


def whisker_summary(xs: Sequence[float]) -> WhiskerSummary:
    """Compute the paper's whisker-plot summary of a sample.

    Whiskers extend to the most extreme data points within
    ``[Q1 - 1.5 IQR, Q3 + 1.5 IQR]``; anything outside is an outlier.
    """
    if not xs:
        raise ConfigurationError("whisker summary of empty sample")
    q1, med, q3 = quartiles(xs)
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside: List[float] = [x for x in xs if lo_fence <= x <= hi_fence]
    outliers = tuple(sorted(x for x in xs if x < lo_fence or x > hi_fence))
    # With a non-degenerate sample the quartiles themselves are always
    # inside the fences, so ``inside`` is non-empty.
    return WhiskerSummary(
        n=len(xs),
        q1=q1,
        median=med,
        q3=q3,
        whisker_low=min(inside),
        whisker_high=max(inside),
        outliers=outliers,
    )
