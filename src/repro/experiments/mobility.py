"""§4.5 — mobility (Figures 11, 12, 13).

The device walks the fixed 250-second route of Figure 11 while
downloading continuously; WiFi throughput follows the device-AP
distance, dropping to almost nothing during the out-of-range
excursions while the association survives.  All protocols traverse the
identical route (the paper keeps the route fixed for fairness; we keep
the capacity trace fixed).

Expected shapes (paper, Figure 13): eMPTCP's per-byte energy ~22%
below MPTCP's and ~8-15% above TCP-over-WiFi's; it downloads ~25% less
than MPTCP but ~28% more than TCP over WiFi in the same 250 s.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.scenario import RunResult, Scenario
from repro.net.bandwidth import ConstantCapacity, PiecewiseTraceCapacity
from repro.runtime.executor import group_results, run_specs
from repro.runtime.spec import RunSpec
from repro.units import mbps_to_bytes_per_sec
from repro.workloads.mobility import (
    DEFAULT_AP_POSITION,
    DEFAULT_USABLE_RANGE,
    default_route,
    route_capacity_trace,
)

#: Peak WiFi rate next to the AP, Mbps (Figure 12's traces peak ~15-18).
PEAK_WIFI_MBPS = 18.0

#: Indoor LTE rate during the walk, Mbps (deep inside the building the
#: cellular link is noticeably slower than in the §4.2 lab spot).
MOBILITY_LTE_MBPS = 6.0

#: Residual rate while out of range but still associated, Mbps.  Small
#: but non-zero: the paper stresses the device never disassociates.
FLOOR_WIFI_MBPS = 0.05

#: Measurement window, seconds.
DURATION = 250.0

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


def mobility_capacity_trace():
    """The WiFi capacity trace induced by walking the default route."""
    return route_capacity_trace(
        default_route(),
        DEFAULT_AP_POSITION,
        max_rate=mbps_to_bytes_per_sec(PEAK_WIFI_MBPS),
        usable_range=DEFAULT_USABLE_RANGE,
        step=1.0,
        floor_rate=mbps_to_bytes_per_sec(FLOOR_WIFI_MBPS),
    )


def mobility_scenario(duration: float = DURATION) -> Scenario:
    """The Figure 12/13 scenario: fixed window, backlogged download."""
    trace = mobility_capacity_trace()
    return Scenario(
        name="mobility",
        wifi_capacity=lambda _rng: PiecewiseTraceCapacity(trace),
        cell_capacity=lambda _rng: ConstantCapacity(
            mbps_to_bytes_per_sec(MOBILITY_LTE_MBPS)
        ),
        duration=duration,
    )


def mobility_specs(
    runs: int = 5,
    duration: float = DURATION,
    protocols: Sequence[str] = PROTOCOLS,
) -> List[RunSpec]:
    """Declarative specs for Figure 13."""
    return [
        RunSpec(
            protocol=protocol,
            builder="mobility",
            kwargs={"duration": duration},
            seed=seed,
        )
        for protocol in protocols
        for seed in range(runs)
    ]


def run_mobility(
    runs: int = 5,
    duration: float = DURATION,
    protocols: Sequence[str] = PROTOCOLS,
) -> Dict[str, List[RunResult]]:
    """Figure 13: ``runs`` repetitions per protocol over the same route."""
    specs = mobility_specs(runs=runs, duration=duration, protocols=protocols)
    return group_results(specs, run_specs(specs))


def example_traces(duration: float = DURATION, seed: int = 2) -> Dict[str, RunResult]:
    """Figure 12: accumulated-energy traces over one walk."""
    specs = [
        RunSpec(
            protocol=protocol,
            builder="mobility",
            kwargs={"duration": duration},
            seed=seed,
        )
        for protocol in PROTOCOLS
    ]
    return {spec.protocol: r for spec, r in zip(specs, run_specs(specs))}
