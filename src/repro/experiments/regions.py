"""Offline energy-model figures: Figure 3 (efficiency heat map),
Figure 4 (operating regions by download size), and Table 2 (EIB rows).

These come straight from the parameterised energy model — no simulation
involved — exactly as in the paper, where they are computed offline to
populate the EIB.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.eib import EibEntry, cached_eib
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.energy.efficiency import efficiency_heatmap, region_boundaries
from repro.energy.power import Direction
from repro.net.interface import InterfaceKind
from repro.units import mib

#: Table 2's published LTE throughput rows, Mbps.
TABLE2_LTE_ROWS = (0.5, 1.0, 1.5, 2.0)

#: The paper's published Table 2 thresholds, for EXPERIMENTS.md
#: comparison: lte_mbps -> (lte_only_below, wifi_only_above).
TABLE2_PAPER = {
    0.5: (0.043, 0.234),
    1.0: (0.134, 0.502),
    1.5: (0.209, 0.803),
    2.0: (0.304, 1.070),
}

#: Figure 4's download sizes.
FIGURE4_SIZES = {"1MB": mib(1), "4MB": mib(4), "16MB": mib(16)}


def table2_rows(
    profile: DeviceProfile = GALAXY_S3,
    lte_rows: Sequence[float] = TABLE2_LTE_ROWS,
    direction: Direction = Direction.DOWN,
) -> List[EibEntry]:
    """Table 2: EIB thresholds for the requested LTE throughputs.

    The published table is the download direction; pass
    ``direction=Direction.UP`` for the upload variant's (steeper
    transmit slope) thresholds.
    """
    eib = cached_eib(profile, InterfaceKind.LTE, direction)
    return eib.table_rows(lte_rows)


def figure3_heatmap(
    profile: DeviceProfile = GALAXY_S3,
    step: float = 0.25,
    max_mbps: float = 10.0,
) -> Tuple[List[float], List[float], List[List[float]]]:
    """Figure 3: (wifi grid, lte grid, normalised per-byte energy of
    MPTCP over the best single path).  Values < 1 form the dark "V"."""
    grid = [step * i for i in range(1, int(max_mbps / step) + 1)]
    return grid, grid, efficiency_heatmap(profile, grid, grid)


def figure4_regions(
    profile: DeviceProfile = GALAXY_S3,
    sizes: Dict[str, float] = None,
    step: float = 0.25,
    max_wifi: float = 6.0,
    max_lte: float = 12.0,
) -> Dict[str, Dict[float, Tuple[float, float]]]:
    """Figure 4: per download size, the WiFi-throughput interval (per
    LTE throughput row) where completing the whole transfer with both
    interfaces beats either single path, fixed overheads included."""
    sizes = sizes or FIGURE4_SIZES
    wifi_grid = [step * i for i in range(1, int(max_wifi / step) + 1)]
    lte_grid = [step * i for i in range(1, int(max_lte / step) + 1)]
    return {
        label: region_boundaries(profile, size, wifi_grid, lte_grid)
        for label, size in sizes.items()
    }
