"""§4.4 — random WiFi background traffic (Figures 9 and 10).

n ∈ {2, 3} interfering nodes share the WiFi channel, each driving UDP
through a Markov on-off process with λ_on = 0.05 and
λ_off ∈ {0.025, 0.05}, while the device downloads a 256 MB file.

Expected shapes (paper, Figure 10, values relative to MPTCP): eMPTCP
uses 9-11% less energy at 20-40% larger download time; TCP over WiFi's
download time blows up with contention (up to ~5x) while eMPTCP stays
within ~1.2-1.4x.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.scenario import RunResult, Scenario
from repro.experiments.static_bw import LAB_LTE_MBPS
from repro.net.bandwidth import ConstantCapacity
from repro.net.contention import WiFiChannel
from repro.runtime.executor import run_specs
from repro.runtime.spec import RunSpec
from repro.sim.engine import Simulator
from repro.units import mbps_to_bytes_per_sec, mib
from repro.workloads.background import make_interferers

#: AP capacity with no contention, Mbps.
AP_CAPACITY_MBPS = 12.0

#: The paper's fixed on-rate (per second).
LAMBDA_ON = 0.05

#: The (λ_off, n) rows of Figure 10, in the paper's order.
FIGURE10_CONFIGS: Tuple[Tuple[float, int], ...] = ((0.025, 2), (0.025, 3), (0.05, 3))

DEFAULT_DOWNLOAD = mib(256)

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


def background_scenario(
    n_interferers: int,
    lambda_off: float,
    download_bytes: float = DEFAULT_DOWNLOAD,
    lambda_on: float = LAMBDA_ON,
) -> Scenario:
    """One §4.4 configuration."""

    def interferers(sim: Simulator, channel: WiFiChannel, rng: _random.Random):
        return make_interferers(
            sim, channel, n_interferers, lambda_on, lambda_off, rng
        )

    return Scenario(
        name=f"background-n{n_interferers}-loff{lambda_off}",
        wifi_capacity=lambda _rng: ConstantCapacity(
            mbps_to_bytes_per_sec(AP_CAPACITY_MBPS)
        ),
        cell_capacity=lambda _rng: ConstantCapacity(
            mbps_to_bytes_per_sec(LAB_LTE_MBPS)
        ),
        download_bytes=download_bytes,
        interferers=interferers,
    )


@dataclass(frozen=True)
class NormalizedRow:
    """One Figure 10 row: a protocol's metrics relative to MPTCP."""

    lambda_off: float
    n: int
    protocol: str
    energy_pct: float
    time_pct: float


def background_specs(
    configs: Sequence[Tuple[float, int]] = FIGURE10_CONFIGS,
    runs: int = 5,
    download_bytes: float = DEFAULT_DOWNLOAD,
    protocols: Sequence[str] = PROTOCOLS,
) -> List[RunSpec]:
    """Declarative specs covering every Figure 10 configuration."""
    return [
        RunSpec(
            protocol=protocol,
            builder="background",
            kwargs={
                "n_interferers": n,
                "lambda_off": lambda_off,
                "download_bytes": download_bytes,
            },
            seed=seed,
        )
        for lambda_off, n in configs
        for protocol in protocols
        for seed in range(runs)
    ]


def run_background(
    configs: Sequence[Tuple[float, int]] = FIGURE10_CONFIGS,
    runs: int = 5,
    download_bytes: float = DEFAULT_DOWNLOAD,
    protocols: Sequence[str] = PROTOCOLS,
) -> Dict[Tuple[float, int], Dict[str, List[RunResult]]]:
    """All Figure 10 configurations, ``runs`` repetitions each.

    Every (configuration, protocol, seed) run is an independent spec,
    so one ``use_runtime(jobs=N)`` context parallelises the whole sweep
    rather than one configuration at a time.
    """
    specs = background_specs(
        configs=configs, runs=runs, download_bytes=download_bytes,
        protocols=protocols,
    )
    out: Dict[Tuple[float, int], Dict[str, List[RunResult]]] = {}
    for spec, result in zip(specs, run_specs(specs)):
        key = (spec.kwargs["lambda_off"], spec.kwargs["n_interferers"])
        out.setdefault(key, {}).setdefault(spec.protocol, []).append(result)
    return out


def normalize_to_mptcp(
    results: Dict[Tuple[float, int], Dict[str, List[RunResult]]],
) -> List[NormalizedRow]:
    """Figure 10's presentation: percentages relative to MPTCP, where
    below 100% beats standard MPTCP."""
    rows: List[NormalizedRow] = []
    for (lambda_off, n), by_protocol in results.items():
        base = by_protocol["mptcp"]
        base_energy = sum(r.energy_j for r in base) / len(base)
        base_time = sum(r.download_time for r in base) / len(base)
        for protocol, runs_list in by_protocol.items():
            if protocol == "mptcp":
                continue
            energy = sum(r.energy_j for r in runs_list) / len(runs_list)
            time = sum(r.download_time for r in runs_list) / len(runs_list)
            rows.append(
                NormalizedRow(
                    lambda_off=lambda_off,
                    n=n,
                    protocol=protocol,
                    energy_pct=100.0 * energy / base_energy,
                    time_pct=100.0 * time / base_time,
                )
            )
    return rows


def example_traces(
    download_bytes: float = DEFAULT_DOWNLOAD, seed: int = 3
) -> Dict[str, RunResult]:
    """Figure 9: per-interface throughput traces of MPTCP and eMPTCP
    under (n=2, λ_on=0.05, λ_off=0.025)."""
    specs = [
        RunSpec(
            protocol=protocol,
            builder="background",
            kwargs={
                "n_interferers": 2,
                "lambda_off": 0.025,
                "download_bytes": download_bytes,
            },
            seed=seed,
        )
        for protocol in ("mptcp", "emptcp")
    ]
    return {spec.protocol: r for spec, r in zip(specs, run_specs(specs))}
