"""Parameter-sensitivity sweeps for eMPTCP's tuning knobs.

§4.1 sets κ = 1 MB and τ = 3 s and notes that "refining them to improve
performance remains a subject for future work"; §3.4 fixes the safety
factor at 10%.  This module sweeps each knob over a scenario and
reports the energy/time/stability trade-off, quantifying how sensitive
the published defaults are.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Sequence, Union

from repro.analysis.stats import mean
from repro.core.config import EMPTCPConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import RunResult, Scenario
from repro.runtime.executor import run_specs
from repro.runtime.spec import ScenarioRef


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated outcome of one parameter value."""

    parameter: str
    value: float
    energy_j: float
    download_time: float
    decision_switches: float
    lte_suspends: float
    cell_established_frac: float


def _sweep_point_results(
    scenario: Union[Scenario, ScenarioRef],
    parameter: str,
    value: float,
    runs: int,
    protocol: str,
) -> List[RunResult]:
    """One sweep value's runs.

    A :class:`ScenarioRef` routes through the execution runtime (so the
    sweep parallelises and caches under ``use_runtime``); a built
    :class:`Scenario` — which holds unpicklable closures — runs
    in-process exactly as before.
    """
    if isinstance(scenario, ScenarioRef):
        specs = [
            scenario.spec(protocol, seed=seed, config={parameter: value})
            for seed in range(runs)
        ]
        return run_specs(specs)
    config = dataclasses.replace(scenario.emptcp_config, **{parameter: value})
    swept = dataclasses.replace(scenario, emptcp_config=config)
    return [run_scenario(protocol, swept, seed=seed) for seed in range(runs)]


def sweep_config(
    parameter: str,
    values: Sequence[float],
    scenario: Union[Scenario, ScenarioRef],
    runs: int = 3,
    protocol: str = "emptcp",
) -> List[SweepPoint]:
    """Run ``protocol`` on ``scenario`` once per EMPTCPConfig value.

    ``parameter`` must be a field of :class:`EMPTCPConfig`; the
    scenario's config is replaced field-wise for each sweep value.
    ``scenario`` may be a built :class:`Scenario` or a
    :class:`~repro.runtime.spec.ScenarioRef` naming a registered
    builder (the latter runs through the parallel runtime).
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    field_names = {f.name for f in dataclasses.fields(EMPTCPConfig)}
    if parameter not in field_names:
        raise ConfigurationError(
            f"{parameter!r} is not an EMPTCPConfig field; choose from "
            f"{sorted(field_names)}"
        )
    points: List[SweepPoint] = []
    for value in values:
        results = _sweep_point_results(scenario, parameter, value, runs, protocol)
        points.append(
            SweepPoint(
                parameter=parameter,
                value=value,
                energy_j=mean([r.energy_j for r in results]),
                download_time=mean(
                    [r.download_time for r in results if r.download_time is not None]
                    or [float("nan")]
                ),
                decision_switches=mean(
                    [r.diagnostics.get("decision_switches", 0.0) for r in results]
                ),
                lte_suspends=mean(
                    [r.diagnostics.get("lte_suspends", 0.0) for r in results]
                ),
                cell_established_frac=mean(
                    [r.diagnostics.get("cell_established", 0.0) for r in results]
                ),
            )
        )
    return points


def sweep_kappa(
    scenario: Scenario, values: Sequence[float] = (64e3, 256e3, 1e6, 4e6, 16e6),
    runs: int = 3,
) -> List[SweepPoint]:
    """Sweep the κ byte threshold (§3.5; paper default 1 MB)."""
    return sweep_config("kappa_bytes", values, scenario, runs=runs)


def sweep_tau(
    scenario: Scenario, values: Sequence[float] = (1.0, 3.0, 6.0, 12.0),
    runs: int = 3,
) -> List[SweepPoint]:
    """Sweep the τ timer (§3.5; paper default 3 s)."""
    return sweep_config("tau_seconds", values, scenario, runs=runs)


def sweep_safety_factor(
    scenario: Scenario, values: Sequence[float] = (0.0, 0.05, 0.10, 0.20, 0.40),
    runs: int = 3,
) -> List[SweepPoint]:
    """Sweep the hysteresis safety factor (§3.4; paper default 10%)."""
    return sweep_config("safety_factor", values, scenario, runs=runs)


PointFormatter = Callable[[SweepPoint], str]


def format_sweep(points: Sequence[SweepPoint]) -> str:
    """A text table of sweep results."""
    lines = [
        f"{'value':>12} {'energy (J)':>11} {'time (s)':>9} "
        f"{'switches':>9} {'suspends':>9} {'LTE used':>9}"
    ]
    for p in points:
        lines.append(
            f"{p.value:12g} {p.energy_j:11.1f} {p.download_time:9.1f} "
            f"{p.decision_switches:9.1f} {p.lte_suspends:9.1f} "
            f"{p.cell_established_frac:9.0%}"
        )
    return "\n".join(lines)
