"""§4.2 — static configurations (Figures 5 and 6).

Persistent high (>10 Mbps) or low (<1 Mbps) WiFi bandwidth while the
device downloads a 256 MB file at a fixed location, against a good LTE
network.  Expected shapes:

* good WiFi (Fig 5): eMPTCP chooses WiFi-only and behaves like
  single-path TCP over WiFi; MPTCP burns noticeably more energy for a
  modest time win.
* bad WiFi (Fig 6): eMPTCP behaves like MPTCP (after the LTE startup
  delay set by κ and τ); TCP over WiFi takes an order of magnitude
  longer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.scenario import RunResult, Scenario
from repro.net.bandwidth import ConstantCapacity
from repro.runtime.executor import group_results, run_specs
from repro.runtime.spec import RunSpec
from repro.units import mbps_to_bytes_per_sec, mib

#: The paper's static WiFi operating points, Mbps.
GOOD_WIFI_MBPS = 12.0
BAD_WIFI_MBPS = 0.8

#: LTE bandwidth in the lab, Mbps.
LAB_LTE_MBPS = 10.0

#: The paper downloads 256 MB; benchmarks may scale this down.
DEFAULT_DOWNLOAD = mib(256)

#: Protocols compared in Figures 5/6.
PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


def static_scenario(
    good_wifi: bool,
    download_bytes: float = DEFAULT_DOWNLOAD,
    lte_mbps: float = LAB_LTE_MBPS,
) -> Scenario:
    """The Figure 5 (good) / Figure 6 (bad) scenario."""
    wifi_mbps = GOOD_WIFI_MBPS if good_wifi else BAD_WIFI_MBPS
    label = "good" if good_wifi else "bad"
    return Scenario(
        name=f"static-{label}-wifi",
        wifi_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(wifi_mbps)),
        cell_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(lte_mbps)),
        download_bytes=download_bytes,
    )


def static_specs(
    good_wifi: bool,
    runs: int = 5,
    download_bytes: float = DEFAULT_DOWNLOAD,
    protocols: Sequence[str] = PROTOCOLS,
    lte_mbps: float = LAB_LTE_MBPS,
    engine: str = "fluid",
) -> List[RunSpec]:
    """Declarative specs for Figures 5/6 (protocol-major, seed-minor)."""
    kwargs = {
        "good_wifi": good_wifi,
        "download_bytes": download_bytes,
        "lte_mbps": lte_mbps,
    }
    return [
        RunSpec(
            protocol=protocol,
            builder="static",
            kwargs=dict(kwargs),
            seed=seed,
            engine=engine,
        )
        for protocol in protocols
        for seed in range(runs)
    ]


def run_static(
    good_wifi: bool,
    runs: int = 5,
    download_bytes: float = DEFAULT_DOWNLOAD,
    protocols: Sequence[str] = PROTOCOLS,
    engine: str = "fluid",
) -> Dict[str, List[RunResult]]:
    """Figures 5/6: ``runs`` repetitions per protocol, through the
    execution runtime (parallel/cached under ``use_runtime``)."""
    specs = static_specs(
        good_wifi,
        runs=runs,
        download_bytes=download_bytes,
        protocols=protocols,
        engine=engine,
    )
    return group_results(specs, run_specs(specs))
