"""Upload scenarios — §7's first future-work item.

Uploads flip the energy calculus: radios transmit at far higher power
than they receive (the Galaxy S3 profile's LTE upload slope is 5.5x its
download slope), so the EIB's WiFi-only region widens and eMPTCP should
lean on WiFi even harder than for downloads.  This module builds
upload-direction scenarios (the fluid TCP substrate is symmetric; the
direction only changes which power slope the meter and the EIB use) and
a comparison harness.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.eib import EibEntry, cached_eib
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.energy.power import Direction
from repro.experiments.scenario import RunResult, Scenario
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind
from repro.runtime.executor import group_results, run_specs
from repro.runtime.spec import RunSpec
from repro.units import mbps_to_bytes_per_sec, mib

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")

#: Typical uplink rates are below downlink rates on both technologies.
GOOD_WIFI_UP_MBPS = 8.0
BAD_WIFI_UP_MBPS = 0.6
LAB_LTE_UP_MBPS = 5.0

DEFAULT_UPLOAD = mib(64)


def upload_scenario(
    good_wifi: bool,
    upload_bytes: float = DEFAULT_UPLOAD,
    lte_mbps: float = LAB_LTE_UP_MBPS,
) -> Scenario:
    """A bulk upload (photo/video sync) over static links."""
    wifi_mbps = GOOD_WIFI_UP_MBPS if good_wifi else BAD_WIFI_UP_MBPS
    label = "good" if good_wifi else "bad"
    return Scenario(
        name=f"upload-{label}-wifi",
        wifi_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(wifi_mbps)),
        cell_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(lte_mbps)),
        download_bytes=upload_bytes,
        direction=Direction.UP,
    )


def upload_specs(
    good_wifi: bool,
    runs: int = 3,
    upload_bytes: float = DEFAULT_UPLOAD,
    protocols: Sequence[str] = PROTOCOLS,
) -> List[RunSpec]:
    """Declarative specs for the upload comparison."""
    return [
        RunSpec(
            protocol=protocol,
            builder="upload",
            kwargs={"good_wifi": good_wifi, "upload_bytes": upload_bytes},
            seed=seed,
        )
        for protocol in protocols
        for seed in range(runs)
    ]


def run_upload(
    good_wifi: bool,
    runs: int = 3,
    upload_bytes: float = DEFAULT_UPLOAD,
    protocols: Sequence[str] = PROTOCOLS,
) -> Dict[str, List[RunResult]]:
    """Compare strategies on a bulk upload."""
    specs = upload_specs(
        good_wifi, runs=runs, upload_bytes=upload_bytes, protocols=protocols
    )
    return group_results(specs, run_specs(specs))


def upload_eib_rows(
    profile: DeviceProfile = GALAXY_S3,
    lte_rows: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
) -> List[EibEntry]:
    """Table-2-style EIB rows for the upload direction."""
    eib = cached_eib(profile, InterfaceKind.LTE, Direction.UP)
    return eib.table_rows(lte_rows)
