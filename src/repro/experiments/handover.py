"""WiFi-handover scenarios — exercising the MPTCP modes of §2.1.

Paasch et al. [21] (discussed in §6) studied mobile/WiFi handover with
MPTCP's modes; the paper's WiFi-First baseline [28] is built on Backup
mode.  This experiment scripts hard AP disassociations (the interface
goes *down*, unlike the mobility walk where the association survives)
and compares:

* ``mptcp`` (Full mode) — both subflows up, nothing to hand over;
* ``single-path-mode`` — one subflow at a time, new one only after the
  interface dies;
* ``wifi-first`` (Backup mode) — LTE backup activates on dissociation;
* ``emptcp`` — the energy-aware controller handles the outage through
  path suspension like any other WiFi degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.protocols import build_protocol
from repro.experiments.runner import setup_energy
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.errors import SimulationError
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.tcp.connection import FiniteSource
from repro.units import mbps_to_bytes_per_sec, mib

PROTOCOLS = ("mptcp", "emptcp", "wifi-first", "single-path-mode")

#: Default outage script: (down_at, up_at) seconds.
DEFAULT_OUTAGES: Tuple[Tuple[float, float], ...] = ((8.0, 20.0), (32.0, 44.0))


@dataclass
class HandoverResult:
    """What one handover run reports."""

    protocol: str
    download_time: float
    energy_j: float
    bytes_received: float
    lte_bytes: float
    subflows: int


def run_handover(
    protocol: str,
    download_bytes: float = mib(48),
    outages: Sequence[Tuple[float, float]] = DEFAULT_OUTAGES,
    wifi_mbps: float = 10.0,
    lte_mbps: float = 8.0,
    profile: DeviceProfile = GALAXY_S3,
    seed: int = 0,
    max_sim_time: float = 2_000.0,
) -> HandoverResult:
    """Download through scripted WiFi dissociations."""
    sim = Simulator()
    streams = RandomStreams(seed)
    wifi = NetworkPath(
        NetworkInterface(InterfaceKind.WIFI),
        ConstantCapacity(mbps_to_bytes_per_sec(wifi_mbps)),
        base_rtt=0.04,
        name="wifi",
    )
    lte = NetworkPath(
        NetworkInterface(InterfaceKind.LTE),
        ConstantCapacity(mbps_to_bytes_per_sec(lte_mbps)),
        base_rtt=0.065,
        name="lte",
    )
    wifi.attach(sim)
    lte.attach(sim)
    meter, _rrc = setup_energy(sim, profile, InterfaceKind.LTE, wifi, lte)

    def set_wifi(up: bool) -> None:
        wifi.interface.up = up

    for down_at, up_at in outages:
        if up_at <= down_at:
            raise SimulationError("outage must end after it starts")
        sim.schedule_at(down_at, set_wifi, False)
        sim.schedule_at(up_at, set_wifi, True)

    source = FiniteSource(download_bytes)
    conn = build_protocol(
        protocol, sim, wifi, lte, source, profile=profile,
        rng=streams.stream("protocol"),
    )
    conn.on_complete(lambda _c: sim.stop())
    conn.open()
    sim.run(until=max_sim_time)
    if conn.completed_at is None:
        raise SimulationError(f"{protocol} handover run did not complete")
    download_time = conn.completed_at
    conn.close()
    params = profile.rrc[InterfaceKind.LTE]
    sim.run(until=sim.now + params.tail_time + params.active_hold + 1.5)

    mptcp = getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)
    lte_bytes = 0.0
    n_subflows = 1
    if mptcp is not None and hasattr(mptcp, "subflows"):
        n_subflows = len(mptcp.subflows)
        lte_bytes = sum(
            sf.bytes_delivered
            for sf in mptcp.subflows
            if sf.interface_kind.is_cellular
        )
    return HandoverResult(
        protocol=protocol,
        download_time=download_time,
        energy_j=meter.checkpoint(),
        bytes_received=conn.bytes_received,
        lte_bytes=lte_bytes,
        subflows=n_subflows,
    )


def run_handover_comparison(
    protocols: Sequence[str] = PROTOCOLS, **kwargs
) -> Dict[str, HandoverResult]:
    """All strategies through the same outage script."""
    return {protocol: run_handover(protocol, **kwargs) for protocol in protocols}
