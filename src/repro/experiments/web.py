"""§5.4 — the web-browsing case study (Figure 17).

A CNN-like page of 107 objects is fetched the way the Android browser
does it: six parallel persistent connections (12 subflows under
MPTCP).  A dispatcher hands each connection its next object one request
round-trip after the previous one completed; the page is done when
every object has been delivered.

Expected shape (paper): in a good-WiFi/good-LTE environment, MPTCP
consumes ~60% more energy (~10 J more) than eMPTCP and TCP over WiFi at
statistically indistinguishable latency — eMPTCP never opens LTE
because every object is smaller than κ.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.errors import SimulationError, WorkloadError
from repro.experiments.protocols import build_protocol
from repro.experiments.runner import setup_energy
from repro.net.bandwidth import ConstantCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.units import mbps_to_bytes_per_sec
from repro.workloads.web import BROWSER_CONNECTIONS, ObjectQueueSource, WebPage, cnn_like_page

#: The §5.4 environment is good WiFi & good LTE.
WEB_WIFI_MBPS = 14.0
WEB_LTE_MBPS = 12.0
WEB_WIFI_RTT = 0.035
WEB_LTE_RTT = 0.065

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


def _subscribe_delivery(conn, callback: Callable[[float], None]) -> None:
    """Uniform per-round delivered-bytes subscription across protocol
    connection types."""
    mptcp = getattr(conn, "mptcp", None)
    if mptcp is not None:
        mptcp.on_delivery(lambda _sf, delivered: callback(delivered))
        return
    if hasattr(conn, "on_delivery"):  # MPTCPConnection
        conn.on_delivery(lambda _sf, delivered: callback(delivered))
        return
    # SinglePathTcp
    conn.connection.on_delivery(lambda _c, delivered: callback(delivered))


class _FetchWorker:
    """One browser connection: drains its assigned objects in order."""

    def __init__(self, sim: Simulator, conn, source: ObjectQueueSource):
        self.sim = sim
        self.conn = conn
        self.source = source
        self.assigned = 0.0
        self.delivered = 0.0
        self.objects_done = 0
        self._on_object_done: Optional[Callable[["_FetchWorker"], None]] = None
        _subscribe_delivery(conn, self._delivered)

    def set_object_done_callback(self, cb: Callable[["_FetchWorker"], None]) -> None:
        self._on_object_done = cb

    def assign(self, nbytes: float) -> None:
        """Queue the next object on this connection."""
        self.assigned += nbytes
        self.source.push(nbytes)
        notify = getattr(self.conn, "notify_data", None)
        if notify is not None:
            notify()
        else:
            self.conn.connection.notify_data()

    def _delivered(self, nbytes: float) -> None:
        self.delivered += nbytes
        if self.delivered >= self.assigned - 1e-6 and self.assigned > 0:
            self.objects_done += 1
            if self._on_object_done is not None:
                self._on_object_done(self)


@dataclass
class WebResult:
    """What Figure 17 reports for one protocol."""

    protocol: str
    latency: float
    energy_j: float
    energy_at_completion_j: float
    total_bytes: float
    objects: int
    connections: int
    lte_bytes: float


class WebPageFetch:
    """Dispatches a page's objects over N parallel connections."""

    def __init__(
        self,
        sim: Simulator,
        page: WebPage,
        make_connection: Callable[[ObjectQueueSource, int], object],
        n_connections: int = BROWSER_CONNECTIONS,
        request_rtt: float = WEB_WIFI_RTT,
    ):
        if n_connections < 1:
            raise WorkloadError("need at least one connection")
        self.sim = sim
        self.page = page
        self.request_rtt = request_rtt
        self.pending = deque(page.object_sizes)
        self.objects_done = 0
        self.completed_at: Optional[float] = None
        self.workers: List[_FetchWorker] = []
        for i in range(n_connections):
            source = ObjectQueueSource()
            conn = make_connection(source, i)
            worker = _FetchWorker(sim, conn, source)
            worker.set_object_done_callback(self._object_done)
            self.workers.append(worker)

    def start(self) -> None:
        """Open all connections and assign each its first object."""
        for worker in self.workers:
            if self.pending:
                worker.assign(self.pending.popleft())
            worker.conn.open()

    def _object_done(self, worker: _FetchWorker) -> None:
        self.objects_done += 1
        if self.objects_done >= len(self.page):
            self.completed_at = self.sim.now
            self.sim.stop()
            return
        if self.pending:
            size = self.pending.popleft()
            # The next request leaves after the browser parses the
            # response: one request round-trip of think time.
            self.sim.schedule(self.request_rtt, worker.assign, size)

    @property
    def done(self) -> bool:
        """True once every object has been delivered."""
        return self.completed_at is not None


def run_web(
    protocol: str,
    page: Optional[WebPage] = None,
    profile: DeviceProfile = GALAXY_S3,
    seed: int = 0,
    wifi_mbps: float = WEB_WIFI_MBPS,
    lte_mbps: float = WEB_LTE_MBPS,
    n_connections: int = BROWSER_CONNECTIONS,
    max_sim_time: float = 600.0,
) -> WebResult:
    """Fetch the page under one protocol and measure Figure 17's bars."""
    page = page or cnn_like_page()
    sim = Simulator()
    streams = RandomStreams(seed)
    wifi_path = NetworkPath(
        NetworkInterface(InterfaceKind.WIFI),
        ConstantCapacity(mbps_to_bytes_per_sec(wifi_mbps)),
        base_rtt=WEB_WIFI_RTT,
        name="wifi",
    )
    cell_path = NetworkPath(
        NetworkInterface(InterfaceKind.LTE),
        ConstantCapacity(mbps_to_bytes_per_sec(lte_mbps)),
        base_rtt=WEB_LTE_RTT,
        name="lte",
    )
    wifi_path.attach(sim)
    cell_path.attach(sim)
    meter, _rrc = setup_energy(sim, profile, InterfaceKind.LTE, wifi_path, cell_path)

    def make_connection(source: ObjectQueueSource, index: int):
        return build_protocol(
            protocol,
            sim,
            wifi_path,
            cell_path,
            source,
            profile=profile,
            rng=streams.stream(f"conn-{index}"),
        )

    fetch = WebPageFetch(sim, page, make_connection, n_connections=n_connections)
    fetch.start()
    sim.run(until=max_sim_time)
    if not fetch.done:
        raise SimulationError(
            f"web fetch under {protocol} did not finish within {max_sim_time}s"
        )
    latency = fetch.completed_at
    energy_at_completion = meter.checkpoint()
    lte_bytes = 0.0
    for worker in fetch.workers:
        conn = worker.conn
        mptcp = getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)
        if mptcp is not None and hasattr(mptcp, "subflows"):
            lte_bytes += sum(
                sf.bytes_delivered
                for sf in mptcp.subflows
                if sf.interface_kind.is_cellular
            )
        close = getattr(conn, "close", None)
        if close is not None:
            close()
    # Drain the residual cellular tail, as the paper's measurements do.
    rrc_params = profile.rrc[InterfaceKind.LTE]
    sim.run(until=sim.now + rrc_params.tail_time + rrc_params.active_hold + 1.5)
    return WebResult(
        protocol=protocol,
        latency=latency,
        energy_j=meter.checkpoint(),
        energy_at_completion_j=energy_at_completion,
        total_bytes=page.total_bytes,
        objects=len(page),
        connections=n_connections,
        lte_bytes=lte_bytes,
    )


def run_web_comparison(
    protocols: Sequence[str] = PROTOCOLS,
    runs: int = 10,
    **kwargs,
) -> Dict[str, List[WebResult]]:
    """Figure 17: averaged over ``runs`` page loads per protocol.

    Page loads go through the execution runtime (parallelism + caching)
    when every keyword argument is JSON-serialisable; passing rich
    objects such as ``page=`` or ``profile=`` falls back to direct
    in-process calls.
    """
    from repro.errors import ConfigurationError
    from repro.runtime.executor import group_results, run_specs
    from repro.runtime.spec import RunSpec

    try:
        specs = [
            RunSpec(protocol=protocol, builder="web", kwargs=dict(kwargs), seed=seed)
            for protocol in protocols
            for seed in range(runs)
        ]
    except ConfigurationError:
        return {
            protocol: [run_web(protocol, seed=seed, **kwargs) for seed in range(runs)]
            for protocol in protocols
        }
    return group_results(specs, run_specs(specs))
