"""Scenario and result types shared by all experiments.

A :class:`Scenario` is a *recipe*: capacity-process factories (so each
run gets fresh, independently seeded processes), path parameters, the
workload size or measurement duration, and the device profile.  The
runner instantiates it once per (protocol, seed) pair.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import EMPTCPConfig
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.net.bandwidth import CapacityProcess
from repro.net.contention import WiFiChannel
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.trace import TimeSeries
from repro.units import bytes_per_sec_to_mbps, joules_per_byte_to_joules_per_bit

CapacityFactory = Callable[[_random.Random], CapacityProcess]
InterfererFactory = Callable[[Simulator, WiFiChannel, _random.Random], list]


@dataclass
class Scenario:
    """One experimental configuration (lab §4 or wild §5 flavour)."""

    name: str
    wifi_capacity: CapacityFactory
    cell_capacity: CapacityFactory
    #: Transfer size in bytes (finite-download experiments)...
    download_bytes: Optional[float] = None
    #: ...or a fixed measurement window in seconds (mobility §4.5).
    duration: Optional[float] = None
    profile: DeviceProfile = GALAXY_S3
    cell_kind: InterfaceKind = InterfaceKind.LTE
    wifi_rtt: float = 0.050
    cell_rtt: float = 0.070
    wifi_loss: float = 0.0
    cell_loss: float = 0.0
    #: Attach Markov on-off interferers to the WiFi channel (§4.4).
    interferers: Optional[InterfererFactory] = None
    #: Transfer direction; uploads burn the radios' (steeper) transmit
    #: slopes and use a direction-specific EIB (a §7 future-work item).
    direction: Direction = Direction.DOWN
    emptcp_config: EMPTCPConfig = field(default_factory=EMPTCPConfig)
    #: Hard wall for finite downloads; exceeding it raises.
    max_sim_time: float = 40_000.0

    def __post_init__(self) -> None:
        if (self.download_bytes is None) == (self.duration is None):
            raise ConfigurationError(
                "exactly one of download_bytes / duration must be set"
            )
        if self.download_bytes is not None and self.download_bytes <= 0:
            raise ConfigurationError("download_bytes must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not self.cell_kind.is_cellular:
            raise ConfigurationError("cell_kind must be cellular")


@dataclass
class RunResult:
    """Everything one run produces.

    ``energy_j`` includes the residual cellular tail drained after the
    transfer finishes (the paper's measured totals attribute the tail
    to the download); ``energy_at_completion_j`` is the meter reading
    at the instant the last byte arrived.
    """

    protocol: str
    scenario: str
    seed: int
    download_time: Optional[float]
    bytes_received: float
    energy_j: float
    energy_at_completion_j: float
    #: Cumulative energy over time (Figures 7 and 12).
    energy_series: TimeSeries
    #: Per-interface aggregate delivery rate, sampled every second
    #: (Figure 9's throughput traces).
    wifi_rate_series: TimeSeries
    cell_rate_series: TimeSeries
    #: Mean *available* path rate over the run, Mbps (Figure 14's axes).
    measured_wifi_mbps: float
    measured_cell_mbps: float
    #: Per-protocol diagnostics (suspend counts, decisions, failovers…).
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def joules_per_byte(self) -> float:
        """Per-byte energy (Figure 13's y-axis is J/bit = this / 8)."""
        if self.bytes_received <= 0:
            return float("inf")
        return self.energy_j / self.bytes_received

    @property
    def joules_per_bit(self) -> float:
        """Per-bit energy, as plotted in Figure 13."""
        return joules_per_byte_to_joules_per_bit(self.joules_per_byte)

    @property
    def mean_goodput_mbps(self) -> float:
        """Mean delivery rate over the download, Mbps."""
        if not self.download_time:
            return 0.0
        return bytes_per_sec_to_mbps(self.bytes_received / self.download_time)

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-ready form, keyed by field name.

        This is the wire format of the execution runtime: results cross
        process boundaries and land in the on-disk cache this way, so a
        round trip through :meth:`from_dict` must reproduce every field
        exactly (floats survive JSON's repr round trip bit-for-bit).
        """
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "seed": self.seed,
            "download_time": self.download_time,
            "bytes_received": self.bytes_received,
            "energy_j": self.energy_j,
            "energy_at_completion_j": self.energy_at_completion_j,
            "energy_series": self.energy_series.to_dict(),
            "wifi_rate_series": self.wifi_rate_series.to_dict(),
            "cell_rate_series": self.cell_rate_series.to_dict(),
            "measured_wifi_mbps": self.measured_wifi_mbps,
            "measured_cell_mbps": self.measured_cell_mbps,
            "diagnostics": dict(self.diagnostics),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            return cls(
                protocol=data["protocol"],
                scenario=data["scenario"],
                seed=data["seed"],
                download_time=data["download_time"],
                bytes_received=data["bytes_received"],
                energy_j=data["energy_j"],
                energy_at_completion_j=data["energy_at_completion_j"],
                energy_series=TimeSeries.from_dict(data["energy_series"]),
                wifi_rate_series=TimeSeries.from_dict(data["wifi_rate_series"]),
                cell_rate_series=TimeSeries.from_dict(data["cell_rate_series"]),
                measured_wifi_mbps=data["measured_wifi_mbps"],
                measured_cell_mbps=data["measured_cell_mbps"],
                diagnostics=dict(data["diagnostics"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed RunResult data: {exc}") from exc


def summarize_runs(results: List[RunResult]) -> Dict[str, float]:
    """Mean energy/time/bytes over repeated runs of one configuration."""
    if not results:
        raise ConfigurationError("no results to summarise")
    n = len(results)
    mean_energy = sum(r.energy_j for r in results) / n
    times = [r.download_time for r in results if r.download_time is not None]
    return {
        "n": n,
        "energy_j": mean_energy,
        "download_time": sum(times) / len(times) if times else float("nan"),
        "bytes": sum(r.bytes_received for r in results) / n,
        "joules_per_byte": sum(r.joules_per_byte for r in results) / n,
    }
