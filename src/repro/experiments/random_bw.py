"""§4.3 — random WiFi bandwidth changes (Figures 7 and 8).

The AP's bandwidth is modulated by a two-state on-off process with
exponentially distributed dwell times of mean 40 s, alternating between
≤1 Mbps and ≥10 Mbps, while the device downloads a 256 MB file.

Expected shapes (paper): eMPTCP consumes ~8% / ~6% less energy than
MPTCP / TCP-over-WiFi; it is ~22% slower than MPTCP but roughly twice
as fast as TCP over WiFi.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Sequence

from repro.experiments.scenario import RunResult, Scenario
from repro.experiments.static_bw import LAB_LTE_MBPS
from repro.net.bandwidth import ConstantCapacity, TwoStateMarkovCapacity
from repro.runtime.executor import group_results, run_specs
from repro.runtime.spec import RunSpec
from repro.units import mbps_to_bytes_per_sec, mib

#: On/off AP rates, Mbps (paper: >= 10 and <= 1).
HIGH_WIFI_MBPS = 12.0
LOW_WIFI_MBPS = 0.8

#: Mean dwell time in each state, seconds.
MEAN_DWELL = 40.0

DEFAULT_DOWNLOAD = mib(256)

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


def random_bw_scenario(
    download_bytes: float = DEFAULT_DOWNLOAD,
    mean_dwell: float = MEAN_DWELL,
    lte_mbps: float = LAB_LTE_MBPS,
) -> Scenario:
    """The Figure 7/8 scenario."""

    def wifi_capacity(rng: _random.Random) -> TwoStateMarkovCapacity:
        return TwoStateMarkovCapacity(
            high_rate=mbps_to_bytes_per_sec(HIGH_WIFI_MBPS),
            low_rate=mbps_to_bytes_per_sec(LOW_WIFI_MBPS),
            mean_high=mean_dwell,
            mean_low=mean_dwell,
            rng=rng,
            start_high=False,
        )

    return Scenario(
        name="random-wifi-bw",
        wifi_capacity=wifi_capacity,
        cell_capacity=lambda _rng: ConstantCapacity(mbps_to_bytes_per_sec(lte_mbps)),
        download_bytes=download_bytes,
    )


def random_bw_specs(
    runs: int = 10,
    download_bytes: float = DEFAULT_DOWNLOAD,
    protocols: Sequence[str] = PROTOCOLS,
) -> List[RunSpec]:
    """Declarative specs for Figure 8."""
    return [
        RunSpec(
            protocol=protocol,
            builder="random-bw",
            kwargs={"download_bytes": download_bytes},
            seed=seed,
        )
        for protocol in protocols
        for seed in range(runs)
    ]


def run_random_bw(
    runs: int = 10,
    download_bytes: float = DEFAULT_DOWNLOAD,
    protocols: Sequence[str] = PROTOCOLS,
) -> Dict[str, List[RunResult]]:
    """Figure 8: ``runs`` repetitions per protocol, paired seeds so
    every protocol experiences the same bandwidth sample paths."""
    specs = random_bw_specs(
        runs=runs, download_bytes=download_bytes, protocols=protocols
    )
    return group_results(specs, run_specs(specs))


def example_trace(
    download_bytes: float = DEFAULT_DOWNLOAD, seed: int = 7
) -> Dict[str, RunResult]:
    """Figure 7: one run per protocol over the same bandwidth sample
    path; each result carries its accumulated-energy time series."""
    specs = [
        RunSpec(
            protocol=protocol,
            builder="random-bw",
            kwargs={"download_bytes": download_bytes},
            seed=seed,
        )
        for protocol in PROTOCOLS
    ]
    return {spec.protocol: r for spec, r in zip(specs, run_specs(specs))}
