"""§5 — evaluation in the wild (Figures 14, 15, 16).

Environments are sampled from the three client sites x three servers
(WDC/AMS/SNG); each sampled environment fixes per-path bandwidth and
RTT.  For every environment we run one *set* — one run each of eMPTCP,
MPTCP and TCP over WiFi — for each file size (256 KB small, 16 MB
large), then group the results into the four Good/Bad categories at the
8 Mbps threshold and summarise with whisker statistics.

Expected shapes (paper):

* small transfers (Fig 15): eMPTCP ≈ TCP over WiFi everywhere, 75-90%
  less energy than MPTCP, with a few LTE-using outliers where WiFi was
  exceptionally slow;
* large transfers (Fig 16): BB — eMPTCP most efficient (~33% below
  MPTCP) and ~20% faster; BG — eMPTCP ≈ MPTCP with slightly larger
  times; GB/GG — eMPTCP ≈ TCP over WiFi at ~50% of MPTCP's energy,
  ~20% slower than MPTCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.categorize import Category, categorize
from repro.analysis.stats import WhiskerSummary, whisker_summary
from repro.experiments.scenario import RunResult, Scenario
from repro.net.bandwidth import ConstantCapacity, TwoStateMarkovCapacity
from repro.runtime.executor import run_specs
from repro.runtime.spec import RunSpec
from repro.units import kib, mbps_to_bytes_per_sec, mib
from repro.workloads.wild import WildEnvironment, WildSampler

SMALL_BYTES = kib(256)
LARGE_BYTES = mib(16)

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")


#: Short-term fluctuation of wild links around their mean, expressed as
#: (high multiplier, low multiplier).  CSMA WiFi swings hard with cross
#: traffic; scheduled cellular links are much smoother.  The WiFi-side
#: variability is what exercises eMPTCP's *adaptive* control in the
#: wild categories (§5.3).
WIFI_FLUCTUATION = (1.5, 0.3)
LTE_FLUCTUATION = (1.15, 0.7)
FLUCTUATION_DWELL = 12.0


def _fluctuating(mean_mbps: float, multipliers):
    high, low = multipliers

    def factory(rng):
        return TwoStateMarkovCapacity(
            high_rate=mbps_to_bytes_per_sec(mean_mbps * high),
            low_rate=mbps_to_bytes_per_sec(mean_mbps * low),
            mean_high=FLUCTUATION_DWELL,
            mean_low=FLUCTUATION_DWELL,
            rng=rng,
            start_high=rng.random() < 0.5,
        )

    return factory


def environment_scenario(
    env: WildEnvironment, download_bytes: float, fluctuating: bool = True
) -> Scenario:
    """Build the scenario one wild environment induces.

    ``fluctuating=False`` freezes both links at their sampled means —
    useful for controlled unit tests of single operating points.
    """
    if fluctuating:
        wifi_factory = _fluctuating(env.wifi_mbps, WIFI_FLUCTUATION)
        cell_factory = _fluctuating(env.lte_mbps, LTE_FLUCTUATION)
    else:
        wifi_factory = lambda _rng: ConstantCapacity(  # noqa: E731
            mbps_to_bytes_per_sec(env.wifi_mbps)
        )
        cell_factory = lambda _rng: ConstantCapacity(  # noqa: E731
            mbps_to_bytes_per_sec(env.lte_mbps)
        )
    return Scenario(
        name=f"wild-{env.name}",
        wifi_capacity=wifi_factory,
        cell_capacity=cell_factory,
        download_bytes=download_bytes,
        wifi_rtt=env.wifi_rtt,
        cell_rtt=env.lte_rtt,
    )


@dataclass
class WildTrace:
    """One environment's results across the protocol set."""

    environment: WildEnvironment
    category: Category
    results: Dict[str, RunResult] = field(default_factory=dict)


def environment_spec(
    env: WildEnvironment, protocol: str, download_bytes: float, seed: int
) -> RunSpec:
    """The declarative form of one wild run.

    The spec carries only site/server names plus the sampled link
    qualities, so it stays JSON-serialisable and hashable; the ``wild``
    builder rebuilds the :class:`WildEnvironment` on the worker side.
    """
    return RunSpec(
        protocol=protocol,
        builder="wild",
        kwargs={
            "site": env.site.name,
            "server": env.server.name,
            "wifi_mbps": env.wifi_mbps,
            "lte_mbps": env.lte_mbps,
            "download_bytes": download_bytes,
        },
        seed=seed,
    )


def _run_protocol_sets(
    envs: Sequence[WildEnvironment],
    seeds: Sequence[int],
    download_bytes: float,
    protocols: Sequence[str],
) -> List[WildTrace]:
    """Run one protocol set per environment through the runtime."""
    specs = [
        environment_spec(env, protocol, download_bytes, seed)
        for env, seed in zip(envs, seeds)
        for protocol in protocols
    ]
    results = run_specs(specs)
    traces: List[WildTrace] = []
    for i, env in enumerate(envs):
        trace = WildTrace(
            environment=env,
            category=categorize(env.wifi_mbps, env.lte_mbps),
        )
        for j, protocol in enumerate(protocols):
            trace.results[protocol] = results[i * len(protocols) + j]
        traces.append(trace)
    return traces


def collect_traces(
    download_bytes: float,
    n_environments: int = 40,
    seed: int = 185,
    protocols: Sequence[str] = PROTOCOLS,
) -> List[WildTrace]:
    """Run one protocol set per sampled environment."""
    sampler = WildSampler(seed=seed)
    envs = sampler.environments(n_environments)
    return _run_protocol_sets(
        envs, [seed + i for i in range(len(envs))], download_bytes, protocols
    )


def collect_traces_grid(
    download_bytes: float,
    iterations: int = 10,
    seed: int = 185,
    protocols: Sequence[str] = PROTOCOLS,
) -> List[WildTrace]:
    """§5's exact methodology: every client-site x server combination,
    ``iterations`` sets each ("we collect ten traces for each
    combination of file size, device and server locations").

    Each iteration draws fresh link qualities for that combination (the
    paper notes network conditions vary over time), and every protocol
    in a set sees the same sampled environment — the paper randomises
    in-set ordering to decorrelate from drift, which a simulator gets
    for free.
    """
    import random as _random

    from repro.net.host import WILD_SERVERS
    from repro.workloads.wild import CLIENT_SITES, LTE_MU, LTE_SIGMA, clamp_mbps

    rng = _random.Random(seed)
    envs: List[WildEnvironment] = []
    for site in CLIENT_SITES.values():
        for server in WILD_SERVERS.values():
            for _ in range(iterations):
                wifi = clamp_mbps(
                    rng.lognormvariate(site.wifi_mu, site.wifi_sigma)
                )
                lte = clamp_mbps(rng.lognormvariate(LTE_MU, LTE_SIGMA))
                envs.append(
                    WildEnvironment(
                        site=site, server=server, wifi_mbps=wifi, lte_mbps=lte
                    )
                )
    return _run_protocol_sets(
        envs, [seed + i for i in range(len(envs))], download_bytes, protocols
    )


def scatter_points(traces: Sequence[WildTrace]) -> List[Dict[str, float]]:
    """Figure 14: the (WiFi, LTE) throughput scatter with categories."""
    return [
        {
            "wifi_mbps": t.environment.wifi_mbps,
            "lte_mbps": t.environment.lte_mbps,
            "category": t.category.value,
        }
        for t in traces
    ]


def whiskers_by_category(
    traces: Sequence[WildTrace],
    metric: str = "energy_j",
) -> Dict[Category, Dict[str, WhiskerSummary]]:
    """Figures 15/16: per-category, per-protocol whisker summaries.

    ``metric`` is a RunResult attribute name: ``energy_j`` or
    ``download_time``.  Categories with no traces are omitted.
    """
    grouped: Dict[Category, Dict[str, List[float]]] = {}
    for trace in traces:
        per_protocol = grouped.setdefault(trace.category, {})
        for protocol, result in trace.results.items():
            per_protocol.setdefault(protocol, []).append(getattr(result, metric))
    return {
        category: {
            protocol: whisker_summary(values)
            for protocol, values in per_protocol.items()
        }
        for category, per_protocol in grouped.items()
    }
