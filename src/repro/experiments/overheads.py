"""Figure 1 (fixed energy overheads) and Table 1 (device specs).

Both are static properties of the device profiles; the bench simply
prints them next to the paper's published values.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.energy.device import DEVICES, DeviceProfile
from repro.energy.rrc import RrcMachine
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.trace import StepTrace

#: The paper's Figure 1 values (joules), eyeballed from the chart.
FIGURE1_PAPER: Dict[Tuple[str, str], float] = {
    ("Samsung Galaxy S3", "wifi"): 0.15,
    ("Samsung Galaxy S3", "3g"): 6.4,
    ("Samsung Galaxy S3", "lte"): 12.0,
    ("LG Nexus 5", "wifi"): 0.06,
    ("LG Nexus 5", "3g"): 7.5,
    ("LG Nexus 5", "lte"): 12.5,
}


def fixed_overheads() -> List[Tuple[str, str, float]]:
    """Figure 1 rows: (device, interface, joules) from the profiles."""
    rows: List[Tuple[str, str, float]] = []
    for profile in DEVICES.values():
        rows.append((profile.name, "wifi", profile.fixed_overhead(InterfaceKind.WIFI)))
        for kind in (InterfaceKind.THREEG, InterfaceKind.LTE):
            if kind in profile.rrc:
                rows.append((profile.name, kind.value, profile.fixed_overhead(kind)))
    return rows


def measured_fixed_overhead(
    profile: DeviceProfile, kind: InterfaceKind
) -> float:
    """Figure 1, measured dynamically: drive one idle->promotion->
    active->tail->idle cycle of the RRC machine through a simulator and
    integrate the state power (excluding transfer power).

    This cross-checks that the event-driven machine reproduces the
    closed-form ``fixed_overhead_joules``.
    """
    sim = Simulator()
    params = profile.rrc[kind]
    machine = RrcMachine(sim, params)
    power = StepTrace("rrc-power-w", initial=0.0)
    machine.on_state_change(
        lambda t, state: power.set(t, profile.interface_power(kind, 0.0, state))
    )
    machine.on_activity(sim.now)
    sim.run(until=params.promotion_time + params.active_hold + params.tail_time + 2.0)
    total = power.integral(0.0, sim.now)
    # The active_hold window between promotion and tail is an artefact
    # of the inactivity timer, not part of the paper's fixed overhead;
    # subtract it for an apples-to-apples number.
    return total - params.active_hold * params.tail_power_w


def table1_rows() -> List[Dict[str, str]]:
    """Table 1: the device specification metadata."""
    rows: List[Dict[str, str]] = []
    for profile in DEVICES.values():
        spec = profile.spec
        rows.append(
            {
                "Name": profile.name,
                "Release Date": spec.release_date,
                "App. Processor": spec.app_processor,
                "Semiconductor": spec.semiconductor,
                "Android Version": spec.android_version,
                "Kernel Version": spec.kernel_version,
                "WiFi chipset": spec.wifi_chipset,
            }
        )
    return rows
