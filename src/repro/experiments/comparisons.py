"""§4.6 — comparisons with existing approaches.

* **MPTCP with WiFi First** (Raiciu et al.): run on the mobility
  scenario, where the WiFi association never breaks; the strategy never
  activates its LTE backup and degenerates into TCP over WiFi — while
  still paying the backup subflow's promotion/tail at establishment.
* **MDP scheduler** (Pluntke et al.): the offline policy is inspected
  (it chooses WiFi-only in every state under our energy model, as the
  paper observes) and executed on the same scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.mdp import MdpAction
from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.experiments.mobility import mobility_specs
from repro.experiments.protocols import mdp_policy_for
from repro.experiments.random_bw import random_bw_specs
from repro.experiments.scenario import RunResult
from repro.net.interface import InterfaceKind
from repro.runtime.executor import group_results, run_specs
from repro.units import mib

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi", "wifi-first", "mdp")


def mdp_policy_actions(profile: DeviceProfile = GALAXY_S3) -> List[MdpAction]:
    """The set of actions the generated MDP policy ever chooses."""
    return mdp_policy_for(profile, InterfaceKind.LTE).chosen_actions()


def run_mobility_comparison(
    runs: int = 3, protocols: Sequence[str] = PROTOCOLS
) -> Dict[str, List[RunResult]]:
    """All five strategies on the §4.5 mobility walk."""
    specs = mobility_specs(runs=runs, protocols=protocols)
    return group_results(specs, run_specs(specs))


def run_random_bw_comparison(
    runs: int = 3,
    download_bytes: float = mib(64),
    protocols: Sequence[str] = PROTOCOLS,
) -> Dict[str, List[RunResult]]:
    """All five strategies under random WiFi bandwidth changes."""
    specs = random_bw_specs(
        runs=runs, download_bytes=download_bytes, protocols=protocols
    )
    return group_results(specs, run_specs(specs))
