"""Video streaming comparison — §7 future work, built on
:mod:`repro.workloads.streaming`.

A 2.5 Mbps stream over on/off WiFi: the buffer-driven fetch pattern is
bursty, so the cellular radio's tail dominates MPTCP's cost while
eMPTCP (whose per-connection byte counter stays below κ per burst and
whose idle veto blocks τ between chunks... until WiFi genuinely cannot
sustain the bitrate) keeps LTE down unless it is needed.  Metrics are
the streaming trio: startup delay, rebuffering, energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.energy.device import GALAXY_S3, DeviceProfile
from repro.experiments.protocols import build_protocol
from repro.experiments.runner import setup_energy
from repro.net.bandwidth import TwoStateMarkovCapacity, ConstantCapacity
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.units import mbps_to_bytes_per_sec
from repro.workloads.streaming import VideoSession
from repro.workloads.web import ObjectQueueSource

PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi")

#: Media bitrate, 2.5 Mbps.
BITRATE = mbps_to_bytes_per_sec(2.5)

#: WiFi alternates between comfortable and below-bitrate.
WIFI_HIGH_MBPS = 10.0
WIFI_LOW_MBPS = 1.2
WIFI_DWELL = 25.0
LTE_MBPS = 8.0


@dataclass
class StreamResult:
    """What a streaming run reports."""

    protocol: str
    startup_delay: float
    rebuffer_events: int
    rebuffer_time: float
    media_played: float
    energy_j: float
    bytes_received: float
    finished: bool

    @property
    def rebuffer_ratio(self) -> float:
        """Stall time per second of media played."""
        if self.media_played <= 0:
            return float("inf")
        return self.rebuffer_time / self.media_played


def run_streaming(
    protocol: str,
    media_seconds: float = 120.0,
    seed: int = 0,
    profile: DeviceProfile = GALAXY_S3,
    steady_wifi: Optional[float] = None,
    max_sim_time: float = 1200.0,
) -> StreamResult:
    """Stream one video under the given protocol.

    ``steady_wifi`` (Mbps) pins WiFi to a constant rate instead of the
    on/off default — useful for tests.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    if steady_wifi is not None:
        wifi_cap = ConstantCapacity(mbps_to_bytes_per_sec(steady_wifi))
    else:
        wifi_cap = TwoStateMarkovCapacity(
            high_rate=mbps_to_bytes_per_sec(WIFI_HIGH_MBPS),
            low_rate=mbps_to_bytes_per_sec(WIFI_LOW_MBPS),
            mean_high=WIFI_DWELL,
            mean_low=WIFI_DWELL,
            rng=streams.stream("wifi-capacity"),
            start_high=True,
        )
    wifi = NetworkPath(
        NetworkInterface(InterfaceKind.WIFI), wifi_cap, base_rtt=0.04, name="wifi"
    )
    lte = NetworkPath(
        NetworkInterface(InterfaceKind.LTE),
        ConstantCapacity(mbps_to_bytes_per_sec(LTE_MBPS)),
        base_rtt=0.065,
        name="lte",
    )
    wifi.attach(sim)
    lte.attach(sim)
    meter, _rrc = setup_energy(sim, profile, InterfaceKind.LTE, wifi, lte)

    source = ObjectQueueSource()
    conn = build_protocol(
        protocol, sim, wifi, lte, source, profile=profile,
        rng=streams.stream("protocol"),
    )
    session = VideoSession(
        sim,
        source,
        notify_data=lambda: _notify(conn),
        media_seconds=media_seconds,
        bitrate_bytes_per_sec=BITRATE,
    )
    _subscribe(conn, session)
    conn.open()
    session.start()
    sim.schedule(0.0, lambda: None)  # ensure the queue is never empty at start
    while sim.now < max_sim_time and not session.done:
        if not sim.step():
            break
    session.stop()
    conn.close()
    bytes_received = conn.bytes_received
    # Drain the residual cellular tail.
    params = profile.rrc[InterfaceKind.LTE]
    sim.run(until=sim.now + params.tail_time + params.active_hold + 1.5)
    startup = (
        session.started_at if session.started_at is not None else float("inf")
    )
    return StreamResult(
        protocol=protocol,
        startup_delay=startup,
        rebuffer_events=session.rebuffer_events,
        rebuffer_time=session.rebuffer_time,
        media_played=session.media_played,
        energy_j=meter.checkpoint(),
        bytes_received=bytes_received,
        finished=session.done,
    )


def run_streaming_comparison(
    runs: int = 3,
    media_seconds: float = 120.0,
    protocols: Sequence[str] = PROTOCOLS,
) -> Dict[str, list]:
    """Stream the same video under each protocol, ``runs`` times."""
    return {
        protocol: [
            run_streaming(protocol, media_seconds=media_seconds, seed=seed)
            for seed in range(runs)
        ]
        for protocol in protocols
    }


def _notify(conn) -> None:
    notify = getattr(conn, "notify_data", None)
    if notify is not None:
        notify()
    else:
        conn.connection.notify_data()


def _subscribe(conn, session: VideoSession) -> None:
    mptcp = getattr(conn, "mptcp", None)
    if mptcp is not None:
        mptcp.on_delivery(lambda _sf, d: session.on_delivery(d))
    elif hasattr(conn, "on_delivery"):
        conn.on_delivery(lambda _sf, d: session.on_delivery(d))
    else:
        conn.connection.on_delivery(lambda _c, d: session.on_delivery(d))
