"""One-shot reproduction report.

``generate_report()`` runs every experiment at a chosen scale and
renders a markdown report in the structure of EXPERIMENTS.md — the
numbers in that file were produced this way.  Scales:

* ``smoke`` — seconds; CI-sized sanity pass;
* ``default`` — a couple of minutes of simulated downloads;
* ``paper`` — the paper's 256 MB / 10-run / 40-environment settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import mean
from repro.errors import ConfigurationError
from repro.experiments import background as bg
from repro.experiments import comparisons, mobility, random_bw, regions, static_bw
from repro.experiments import overheads as ovh
from repro.experiments import web as web_exp
from repro.experiments import wild as wild_exp
from repro.runtime.cache import ResultCache
from repro.runtime.executor import use_runtime
from repro.runtime.manifest import RunManifest
from repro.runtime.progress import ProgressReporter
from repro.units import mib


@dataclass(frozen=True)
class ReportScale:
    """Knobs for one report run."""

    name: str
    download_mib: float
    runs: int
    wild_envs: int
    web_runs: int


SCALES: Dict[str, ReportScale] = {
    "smoke": ReportScale("smoke", download_mib=8, runs=1, wild_envs=6, web_runs=1),
    "default": ReportScale(
        "default", download_mib=64, runs=3, wild_envs=24, web_runs=3
    ),
    "paper": ReportScale(
        "paper", download_mib=256, runs=10, wild_envs=40, web_runs=10
    ),
}


def _protocol_block(results) -> List[str]:
    lines = ["| protocol | energy (J) | time (s) |", "|---|---|---|"]
    for protocol, runs in results.items():
        energy = mean([r.energy_j for r in runs])
        times = [r.download_time for r in runs if r.download_time is not None]
        time_txt = f"{mean(times):.1f}" if times else "(window)"
        lines.append(f"| {protocol} | {energy:.1f} | {time_txt} |")
    return lines


def generate_report(
    scale: str = "smoke",
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    manifest: Optional[RunManifest] = None,
    progress: Optional[ProgressReporter] = None,
) -> str:
    """Run the full evaluation at the given scale; return markdown.

    The runtime keywords override the ambient
    :class:`~repro.runtime.executor.RuntimeContext` for the duration of
    the report; ``None`` inherits whatever ``use_runtime`` (or the CLI)
    has already established.
    """
    if scale not in SCALES:
        raise ConfigurationError(f"unknown scale {scale!r}; choose {sorted(SCALES)}")
    overrides = {
        key: value
        for key, value in (
            ("jobs", jobs),
            ("cache", cache),
            ("manifest", manifest),
            ("progress", progress),
        )
        if value is not None
    }
    with use_runtime(**overrides):
        return _generate_report_body(SCALES[scale])


def _generate_report_body(s: ReportScale) -> str:
    """The report proper; runs inside the resolved runtime context."""
    size = mib(s.download_mib)
    out: List[str] = [
        f"# Reproduction report (scale: {s.name})",
        "",
        f"Downloads {s.download_mib} MiB x {s.runs} runs; "
        f"{s.wild_envs} wild environments; {s.web_runs} page loads.",
        "",
    ]

    out += ["## Table 2 — EIB thresholds", ""]
    out += ["| LTE Mbps | LTE-only < | WiFi-only >= |", "|---|---|---|"]
    for entry in regions.table2_rows():
        out.append(
            f"| {entry.cell_mbps:.1f} | {entry.cellular_only_below:.3f} "
            f"| {entry.wifi_only_above:.3f} |"
        )
    out.append("")

    out += ["## Figure 1 — fixed overheads", ""]
    out += ["| device | interface | joules |", "|---|---|---|"]
    for device, iface, joules in ovh.fixed_overheads():
        out.append(f"| {device} | {iface} | {joules:.2f} |")
    out.append("")

    for good, fig in ((True, "Figure 5 — static good WiFi"),
                      (False, "Figure 6 — static bad WiFi")):
        out += [f"## {fig}", ""]
        out += _protocol_block(
            static_bw.run_static(good, runs=s.runs, download_bytes=size)
        )
        out.append("")

    out += ["## Figure 8 — random WiFi bandwidth", ""]
    out += _protocol_block(
        random_bw.run_random_bw(runs=s.runs, download_bytes=size)
    )
    out.append("")

    out += ["## Figure 10 — background traffic (relative to MPTCP)", ""]
    rows = bg.normalize_to_mptcp(
        bg.run_background(runs=max(1, s.runs // 2), download_bytes=size)
    )
    out += ["| lambda_off | n | protocol | energy % | time % |", "|---|---|---|---|---|"]
    for row in rows:
        out.append(
            f"| {row.lambda_off} | {row.n} | {row.protocol} "
            f"| {row.energy_pct:.0f}% | {row.time_pct:.0f}% |"
        )
    out.append("")

    out += ["## Figure 13 — mobility (250 s)", ""]
    out += ["| protocol | uJ/bit | downloaded (MB) |", "|---|---|---|"]
    for protocol, runs in mobility.run_mobility(runs=s.runs).items():
        out.append(
            f"| {protocol} | {mean([r.joules_per_bit for r in runs]) * 1e6:.3f} "
            f"| {mean([r.bytes_received for r in runs]) / 1e6:.1f} |"
        )
    out.append("")

    for size_label, nbytes, fig in (
        ("256 KB", wild_exp.SMALL_BYTES, "Figure 15 — small transfers"),
        ("16 MB", wild_exp.LARGE_BYTES, "Figure 16 — large transfers"),
    ):
        out += [f"## {fig} ({size_label}, medians by category)", ""]
        traces = wild_exp.collect_traces(nbytes, n_environments=s.wild_envs)
        summaries = wild_exp.whiskers_by_category(traces, "energy_j")
        out += ["| category | protocol | median energy (J) |", "|---|---|---|"]
        for category, by_protocol in summaries.items():
            for protocol, whisker in by_protocol.items():
                out.append(
                    f"| {category.value} | {protocol} | {whisker.median:.2f} |"
                )
        out.append("")

    out += ["## Figure 17 — web browsing", ""]
    out += ["| protocol | energy (J) | latency (s) |", "|---|---|---|"]
    for protocol, web_runs in web_exp.run_web_comparison(runs=s.web_runs).items():
        out.append(
            f"| {protocol} | {mean([r.energy_j for r in web_runs]):.2f} "
            f"| {mean([r.latency for r in web_runs]):.2f} |"
        )
    out.append("")

    out += ["## §4.6 — comparisons", ""]
    actions = [a.value for a in comparisons.mdp_policy_actions()]
    out.append(f"MDP policy actions: {actions}")
    out += _protocol_block(
        comparisons.run_mobility_comparison(runs=max(1, s.runs // 2))
    )
    out.append("")
    return "\n".join(out)
