"""The evaluation harness: scenario definitions, the protocol factory,
the runner that produces :class:`RunResult`s, and one module per paper
figure/table (see DESIGN.md's experiment index)."""

from repro.experiments.protocols import PROTOCOLS, build_protocol
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import RunResult, Scenario

# Per-figure modules (static_bw, random_bw, background, mobility, wild,
# web, regions, overheads, comparisons) and the extensions (upload,
# streaming, handover, sensitivity, report_all) are imported by path;
# see docs/API.md for the task-oriented index.

__all__ = ["PROTOCOLS", "RunResult", "Scenario", "build_protocol", "run_scenario"]
