"""Protocol factory: one uniform constructor for every strategy the
paper compares, on either engine.

Every returned object exposes ``open()``, ``close()``,
``on_complete(cb)``, ``completed_at`` and ``bytes_received``.  On the
fluid engine energy flows through the paths' aggregate-rate listeners;
on the packet engine the runner (or the eMPTCP adapter) probes
delivered rates — either way the runner does not need to know which
protocol it is driving.
"""

from __future__ import annotations

import random as _random
from typing import Any, Optional

from repro.baselines.mdp import MdpPolicy, MdpScheduledConnection
from repro.baselines.single_path import SinglePathTcp
from repro.baselines.wifi_first import WiFiFirstConnection
from repro.core.config import EMPTCPConfig
from repro.core.eib import cached_eib
from repro.core.emptcp import EMPTCPConnection
from repro.energy.device import DeviceProfile
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import ByteSource

#: Every strategy the harness can run (fluid engine).
PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi", "wifi-first", "mdp", "single-path-mode")

#: The subset available at segment granularity.
PACKET_PROTOCOLS = ("emptcp", "mptcp", "tcp-wifi")

#: The subset available on the analytic flow tier.
FLOW_PROTOCOLS = ("emptcp", "mptcp", "tcp-wifi")

#: The transport engines experiments can run on.
ENGINES = ("fluid", "packet", "flow")

#: Which protocols each engine supports (the CLI's validation source).
ENGINE_PROTOCOLS = {
    "fluid": PROTOCOLS,
    "packet": PACKET_PROTOCOLS,
    "flow": FLOW_PROTOCOLS,
}

#: Default throughput levels (Mbps) for the MDP scheduler's state space.
MDP_LEVELS = (0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0)

_POLICY_CACHE = {}


def mdp_policy_for(
    profile: DeviceProfile, cell_kind, direction: Direction = Direction.DOWN
) -> MdpPolicy:
    """Build (and cache) the offline MDP policy for a device profile —
    the stand-in for Pluntke et al.'s cloud-computed schedule."""
    if direction is not Direction.DOWN:
        raise ConfigurationError(
            "the offline MDP policy is computed for downloads only; "
            f"direction {direction.value!r} has no precomputed schedule"
        )
    key = (profile.name, cell_kind, direction)
    if key not in _POLICY_CACHE:
        _POLICY_CACHE[key] = MdpPolicy(
            profile, MDP_LEVELS, MDP_LEVELS, cell_kind=cell_kind
        )
    return _POLICY_CACHE[key]


def build_protocol(
    protocol: str,
    sim: Simulator,
    wifi_path: Any,
    cellular_path: Any,
    source: ByteSource,
    profile: DeviceProfile,
    config: Optional[EMPTCPConfig] = None,
    rng: Optional[_random.Random] = None,
    direction: Direction = Direction.DOWN,
    engine: str = "fluid",
    cell_kind: Optional[InterfaceKind] = None,
    meter=None,
    rrc=None,
):
    """Construct a connection object for the named protocol.

    ``engine="fluid"`` expects :class:`~repro.net.path.NetworkPath`
    arguments; ``engine="packet"`` expects
    :class:`~repro.packet.link.PacketLink` ones (plus ``cell_kind``,
    and optionally the runner-owned ``meter``/``rrc`` for eMPTCP).
    """
    rng = rng or _random.Random(0)
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose one of {ENGINES}"
        )
    if engine == "flow":
        raise ConfigurationError(
            "the flow engine advances whole fleets vectorized and has no "
            "per-connection objects; use repro.flow.single.run_flow_scenario "
            "(via run_scenario(..., engine='flow')) instead of build_protocol"
        )
    if engine == "packet":
        return _build_packet_protocol(
            protocol,
            sim,
            wifi_path,
            cellular_path,
            source,
            profile,
            config=config,
            direction=direction,
            cell_kind=cell_kind or InterfaceKind.LTE,
            meter=meter,
            rrc=rrc,
        )
    if protocol == "tcp-wifi":
        return SinglePathTcp(sim, wifi_path, source, rng=rng)
    if protocol == "mptcp":
        return MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.FULL,
            rng=rng,
            auto_join=True,
            name="mptcp",
        )
    if protocol == "single-path-mode":
        return MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.SINGLE_PATH,
            rng=rng,
            name="single-path",
        )
    if protocol == "emptcp":
        return EMPTCPConnection(
            sim,
            wifi_path,
            cellular_path,
            source,
            profile=profile,
            config=config,
            rng=rng,
            eib=cached_eib(profile, cellular_path.interface.kind, direction),
            direction=direction,
        )
    if protocol == "wifi-first":
        return WiFiFirstConnection(sim, wifi_path, cellular_path, source, rng=rng)
    if protocol == "mdp":
        policy = mdp_policy_for(profile, cellular_path.interface.kind, direction)
        return MdpScheduledConnection(
            sim, wifi_path, cellular_path, source, policy, rng=rng
        )
    raise ConfigurationError(
        f"unknown protocol {protocol!r}; choose one of {PROTOCOLS}"
    )


def _build_packet_protocol(
    protocol: str,
    sim: Simulator,
    wifi_link,
    cellular_link,
    source: ByteSource,
    profile: DeviceProfile,
    config: Optional[EMPTCPConfig],
    direction: Direction,
    cell_kind: InterfaceKind,
    meter,
    rrc,
):
    from repro.packet.emptcp import PacketEmptcp
    from repro.packet.mptcp import PacketMptcpConnection, single_path_connection

    if protocol == "emptcp":
        return PacketEmptcp(
            sim,
            wifi_link,
            cellular_link,
            source,
            profile=profile,
            config=config,
            cell_kind=cell_kind,
            meter=meter,
            direction=direction,
            rrc=rrc,
        )
    if protocol == "mptcp":
        return PacketMptcpConnection(
            sim, [wifi_link, cellular_link], source, name="pmptcp"
        )
    if protocol == "tcp-wifi":
        return single_path_connection(sim, wifi_link, source)
    raise ConfigurationError(
        f"protocol {protocol!r} is not available on the packet engine; "
        f"choose one of {PACKET_PROTOCOLS}"
    )
