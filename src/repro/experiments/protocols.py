"""Protocol factory: one uniform constructor for every strategy the
paper compares.

Every returned object exposes ``open()``, ``close()``,
``on_complete(cb)``, ``completed_at`` and ``bytes_received``; energy
flows through the paths' aggregate-rate listeners, so the runner does
not need to know which protocol it is driving.
"""

from __future__ import annotations

import random as _random
from typing import Optional

from repro.baselines.mdp import MdpPolicy, MdpScheduledConnection
from repro.baselines.single_path import SinglePathTcp
from repro.baselines.wifi_first import WiFiFirstConnection
from repro.core.config import EMPTCPConfig
from repro.core.eib import cached_eib
from repro.core.emptcp import EMPTCPConnection
from repro.energy.device import DeviceProfile
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.tcp.connection import ByteSource

#: Every strategy the harness can run.
PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi", "wifi-first", "mdp", "single-path-mode")

#: Default throughput levels (Mbps) for the MDP scheduler's state space.
MDP_LEVELS = (0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0)

_POLICY_CACHE = {}


def mdp_policy_for(profile: DeviceProfile, cell_kind) -> MdpPolicy:
    """Build (and cache) the offline MDP policy for a device profile —
    the stand-in for Pluntke et al.'s cloud-computed schedule."""
    key = (profile.name, cell_kind)
    if key not in _POLICY_CACHE:
        _POLICY_CACHE[key] = MdpPolicy(
            profile, MDP_LEVELS, MDP_LEVELS, cell_kind=cell_kind
        )
    return _POLICY_CACHE[key]


def build_protocol(
    protocol: str,
    sim: Simulator,
    wifi_path: NetworkPath,
    cellular_path: NetworkPath,
    source: ByteSource,
    profile: DeviceProfile,
    config: Optional[EMPTCPConfig] = None,
    rng: Optional[_random.Random] = None,
    direction: Direction = Direction.DOWN,
):
    """Construct a connection object for the named protocol."""
    rng = rng or _random.Random(0)
    if protocol == "tcp-wifi":
        return SinglePathTcp(sim, wifi_path, source, rng=rng)
    if protocol == "mptcp":
        return MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.FULL,
            rng=rng,
            auto_join=True,
            name="mptcp",
        )
    if protocol == "single-path-mode":
        return MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.SINGLE_PATH,
            rng=rng,
            name="single-path",
        )
    if protocol == "emptcp":
        return EMPTCPConnection(
            sim,
            wifi_path,
            cellular_path,
            source,
            profile=profile,
            config=config,
            rng=rng,
            eib=cached_eib(profile, cellular_path.interface.kind, direction),
        )
    if protocol == "wifi-first":
        return WiFiFirstConnection(sim, wifi_path, cellular_path, source, rng=rng)
    if protocol == "mdp":
        policy = mdp_policy_for(profile, cellular_path.interface.kind)
        return MdpScheduledConnection(
            sim, wifi_path, cellular_path, source, policy, rng=rng
        )
    raise ConfigurationError(
        f"unknown protocol {protocol!r}; choose one of {PROTOCOLS}"
    )
