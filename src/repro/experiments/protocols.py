"""Protocol factory: one uniform constructor for every strategy the
paper compares, on any registered engine.

Every returned object exposes ``open()``, ``close()``,
``on_complete(cb)``, ``completed_at`` and ``bytes_received``.  On the
fluid engine energy flows through the paths' aggregate-rate listeners;
on the packet engine the runner (or the eMPTCP adapter) probes
delivered rates — either way the runner does not need to know which
protocol it is driving.

Engine dispatch goes through :mod:`repro.engines`: each registration
carries its per-connection constructor (``protocol_factory``) and its
supported-protocol tuple, so unsupported combinations fail with the
registry's canonical error naming *that* engine's set.  The legacy
module attributes (``ENGINES``, ``ENGINE_PROTOCOLS``,
``PACKET_PROTOCOLS``, ``FLOW_PROTOCOLS``) are live views derived from
the registrations — they can no longer drift apart.
"""

from __future__ import annotations

import random as _random
from typing import Any, Optional

from repro.baselines.mdp import MdpPolicy, MdpScheduledConnection
from repro.baselines.single_path import SinglePathTcp
from repro.baselines.wifi_first import WiFiFirstConnection
from repro.core.config import EMPTCPConfig
from repro.core.eib import cached_eib
from repro.core.emptcp import EMPTCPConnection
from repro.energy.device import DeviceProfile
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.tcp.connection import ByteSource

#: Every strategy the harness can run (the fluid engine's set — the
#: reference engine registers exactly this tuple).
PROTOCOLS = ("mptcp", "emptcp", "tcp-wifi", "wifi-first", "mdp", "single-path-mode")

#: Default throughput levels (Mbps) for the MDP scheduler's state space.
MDP_LEVELS = (0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0)

_POLICY_CACHE = {}


def __getattr__(name: str):
    """Live registry-derived views of the legacy tuple registries.

    ``ENGINES``, ``ENGINE_PROTOCOLS``, ``PACKET_PROTOCOLS`` and
    ``FLOW_PROTOCOLS`` used to be hand-maintained copies; deriving
    them from the :mod:`repro.engines` registrations keeps old import
    sites working while making drift impossible (a test-registered
    fourth engine shows up in ``ENGINES`` automatically).
    """
    from repro import engines as _engines

    if name == "ENGINES":
        return _engines.engine_names()
    if name == "ENGINE_PROTOCOLS":
        return {
            eng_name: eng.protocols
            for eng_name, eng in _engines.registered_engines().items()
        }
    if name == "PACKET_PROTOCOLS":
        return _engines.get_engine("packet").protocols
    if name == "FLOW_PROTOCOLS":
        return _engines.get_engine("flow").protocols
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def mdp_policy_for(
    profile: DeviceProfile, cell_kind, direction: Direction = Direction.DOWN
) -> MdpPolicy:
    """Build (and cache) the offline MDP policy for a device profile —
    the stand-in for Pluntke et al.'s cloud-computed schedule."""
    if direction is not Direction.DOWN:
        raise ConfigurationError(
            "the offline MDP policy is computed for downloads only; "
            f"direction {direction.value!r} has no precomputed schedule"
        )
    key = (profile.name, cell_kind, direction)
    if key not in _POLICY_CACHE:
        _POLICY_CACHE[key] = MdpPolicy(
            profile, MDP_LEVELS, MDP_LEVELS, cell_kind=cell_kind
        )
    return _POLICY_CACHE[key]


def build_protocol(
    protocol: str,
    sim: Simulator,
    wifi_path: Any,
    cellular_path: Any,
    source: ByteSource,
    profile: DeviceProfile,
    config: Optional[EMPTCPConfig] = None,
    rng: Optional[_random.Random] = None,
    direction: Direction = Direction.DOWN,
    engine: str = "fluid",
    cell_kind: Optional[InterfaceKind] = None,
    meter=None,
    rrc=None,
):
    """Construct a connection object for the named protocol.

    ``engine="fluid"`` expects :class:`~repro.net.path.NetworkPath`
    arguments; ``engine="packet"`` expects
    :class:`~repro.packet.link.PacketLink` ones (plus ``cell_kind``,
    and optionally the runner-owned ``meter``/``rrc`` for eMPTCP).
    Engines without per-connection objects (the vectorized flow tier)
    refuse with a pointer to ``run_scenario``; protocols outside the
    requested engine's registered set raise the canonical error naming
    that engine's supported tuple.
    """
    from repro import engines as _engines

    eng = _engines.get_engine(engine)
    if eng.protocol_factory is None:
        raise ConfigurationError(
            f"the {eng.name!r} engine advances whole fleets vectorized and "
            "has no per-connection objects; use "
            f"run_scenario(..., engine={eng.name!r}) instead of build_protocol"
        )
    message = _engines.protocol_error(eng, protocol)
    if message is not None:
        raise ConfigurationError(message)
    return eng.protocol_factory(
        protocol,
        sim=sim,
        wifi=wifi_path,
        cellular=cellular_path,
        source=source,
        profile=profile,
        config=config,
        rng=rng or _random.Random(0),
        direction=direction,
        cell_kind=cell_kind or InterfaceKind.LTE,
        meter=meter,
        rrc=rrc,
    )


def _build_fluid_protocol(
    protocol: str,
    sim: Simulator,
    wifi: Any,
    cellular: Any,
    source: ByteSource,
    profile: DeviceProfile,
    config: Optional[EMPTCPConfig],
    rng: _random.Random,
    direction: Direction,
    cell_kind: InterfaceKind,
    meter,
    rrc,
):
    """The fluid engine's registered ``protocol_factory``.

    ``cell_kind``/``meter``/``rrc`` are part of the uniform factory
    signature but unused here: fluid paths carry their interface kind
    and the runner owns the energy wiring.
    """
    if protocol == "tcp-wifi":
        return SinglePathTcp(sim, wifi, source, rng=rng)
    if protocol == "mptcp":
        return MPTCPConnection(
            sim,
            primary_path=wifi,
            source=source,
            secondary_paths=[cellular],
            mode=MptcpMode.FULL,
            rng=rng,
            auto_join=True,
            name="mptcp",
        )
    if protocol == "single-path-mode":
        return MPTCPConnection(
            sim,
            primary_path=wifi,
            source=source,
            secondary_paths=[cellular],
            mode=MptcpMode.SINGLE_PATH,
            rng=rng,
            name="single-path",
        )
    if protocol == "emptcp":
        return EMPTCPConnection(
            sim,
            wifi,
            cellular,
            source,
            profile=profile,
            config=config,
            rng=rng,
            eib=cached_eib(profile, cellular.interface.kind, direction),
            direction=direction,
        )
    if protocol == "wifi-first":
        return WiFiFirstConnection(sim, wifi, cellular, source, rng=rng)
    if protocol == "mdp":
        policy = mdp_policy_for(profile, cellular.interface.kind, direction)
        return MdpScheduledConnection(sim, wifi, cellular, source, policy, rng=rng)
    raise ConfigurationError(
        f"unknown protocol {protocol!r}; choose one of {PROTOCOLS}"
    )


def _build_packet_protocol(
    protocol: str,
    sim: Simulator,
    wifi: Any,
    cellular: Any,
    source: ByteSource,
    profile: DeviceProfile,
    config: Optional[EMPTCPConfig],
    rng: _random.Random,
    direction: Direction,
    cell_kind: InterfaceKind,
    meter,
    rrc,
):
    """The packet engine's registered ``protocol_factory``.

    ``rng`` is accepted for signature uniformity; packet links carry
    their own seeded loss/serialization streams.
    """
    from repro import engines as _engines
    from repro.packet.emptcp import PacketEmptcp
    from repro.packet.mptcp import PacketMptcpConnection, single_path_connection

    if protocol == "emptcp":
        return PacketEmptcp(
            sim,
            wifi,
            cellular,
            source,
            profile=profile,
            config=config,
            cell_kind=cell_kind,
            meter=meter,
            direction=direction,
            rrc=rrc,
        )
    if protocol == "mptcp":
        return PacketMptcpConnection(sim, [wifi, cellular], source, name="pmptcp")
    if protocol == "tcp-wifi":
        return single_path_connection(sim, wifi, source)
    raise ConfigurationError(
        _engines.protocol_error("packet", protocol)
        or f"the packet protocol factory has no constructor for {protocol!r}"
    )
