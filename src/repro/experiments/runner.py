"""Run one protocol on one scenario and measure what the paper measures.

Responsibilities:

* build fresh paths/capacity processes/interferers from the scenario's
  factories, with per-component seeded random streams;
* wire the energy side: meter, cellular RRC machine, WiFi activation
  burst, per-path aggregate-rate listeners;
* drive the simulation to transfer completion (or for the fixed
  measurement window), then drain the residual cellular tail;
* return a :class:`~repro.experiments.scenario.RunResult` with energy,
  time, bytes, time series, and per-protocol diagnostics.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import obs as _obs
from repro.energy.meter import EnergyMeter
from repro.energy.power import Direction
from repro.energy.rrc import RrcMachine
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.protocols import ENGINES, build_protocol
from repro.experiments.scenario import RunResult, Scenario
from repro.mptcp.options import MpPrio
from repro.net.contention import WiFiChannel
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams
from repro.sim.trace import TimeSeries
from repro.tcp.connection import FiniteSource, InfiniteSource
from repro.units import bytes_per_sec_to_mbps

#: Sampling interval for the result's rate/capacity traces, seconds.
TRACE_INTERVAL = 1.0


def build_paths(
    sim: Simulator, scenario: Scenario, streams: RandomStreams
) -> Tuple[NetworkPath, NetworkPath, Optional[WiFiChannel]]:
    """Instantiate the WiFi and cellular paths for one run."""
    wifi_cap = scenario.wifi_capacity(streams.stream("wifi-capacity"))
    cell_cap = scenario.cell_capacity(streams.stream("cell-capacity"))
    channel = WiFiChannel(wifi_cap) if scenario.interferers is not None else None
    wifi_path = NetworkPath(
        NetworkInterface(InterfaceKind.WIFI),
        wifi_cap,
        base_rtt=scenario.wifi_rtt,
        loss_rate=scenario.wifi_loss,
        channel=channel,
        name="wifi",
    )
    cell_path = NetworkPath(
        NetworkInterface(scenario.cell_kind),
        cell_cap,
        base_rtt=scenario.cell_rtt,
        loss_rate=scenario.cell_loss,
        name=scenario.cell_kind.value,
    )
    wifi_path.attach(sim)
    cell_path.attach(sim)
    if channel is not None and scenario.interferers is not None:
        scenario.interferers(sim, channel, streams.stream("interferers"))
    return wifi_path, cell_path, channel


def setup_energy(
    sim: Simulator,
    profile,
    cell_kind: InterfaceKind,
    wifi_path: NetworkPath,
    cell_path: NetworkPath,
    direction: Direction = Direction.DOWN,
) -> Tuple[EnergyMeter, RrcMachine]:
    """Wire the energy side of a run: meter, cellular RRC machine on the
    cellular path, per-path aggregate-rate listeners, and the WiFi
    activation burst (paid once per run on every strategy)."""
    meter = EnergyMeter(sim, profile, direction=direction)
    rrc = RrcMachine(sim, profile.rrc[cell_kind])
    cell_path.rrc = rrc
    rrc.on_state_change(lambda _t, state: meter.set_rrc_state(cell_kind, state))
    wifi_path.on_aggregate_rate(
        lambda _t, rate: meter.set_rate(InterfaceKind.WIFI, rate)
    )
    cell_path.on_aggregate_rate(lambda _t, rate: meter.set_rate(cell_kind, rate))
    meter.add_one_shot(profile.wifi_activation_j)
    return meter, rrc


def run_scenario(
    protocol: str, scenario: Scenario, seed: int = 0, engine: str = "fluid"
) -> RunResult:
    """Execute one (protocol, scenario, seed) run on the chosen engine.

    ``engine="fluid"`` is the rate-based model used throughout §4/§5;
    ``engine="packet"`` replays the same scenario at segment
    granularity (supported protocols:
    :data:`~repro.experiments.protocols.PACKET_PROTOCOLS`);
    ``engine="flow"`` uses the analytic vectorized tier
    (:data:`~repro.experiments.protocols.FLOW_PROTOCOLS`).  All three
    produce the same :class:`RunResult` shape, flow through the same
    caching/trace machinery, and emit the same observability events.
    """
    if engine == "packet":
        return _run_packet_scenario(protocol, scenario, seed)
    if engine == "flow":
        from repro.flow.single import run_flow_scenario

        return run_flow_scenario(protocol, scenario, seed)
    if engine != "fluid":
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose one of {ENGINES}"
        )
    sim = Simulator()
    streams = RandomStreams(seed)
    wifi_path, cell_path, _channel = build_paths(sim, scenario, streams)
    profile = scenario.profile
    meter, _rrc = setup_energy(
        sim, profile, scenario.cell_kind, wifi_path, cell_path, scenario.direction
    )

    # --- workload and protocol ------------------------------------------
    if scenario.download_bytes is not None:
        source = FiniteSource(scenario.download_bytes)
    else:
        source = InfiniteSource()
    conn = build_protocol(
        protocol,
        sim,
        wifi_path,
        cell_path,
        source,
        profile=profile,
        config=scenario.emptcp_config,
        rng=streams.stream("protocol"),
        direction=scenario.direction,
    )

    # --- tracing ---------------------------------------------------------
    wifi_rates = TimeSeries("wifi-rate-Bps")
    cell_rates = TimeSeries("cell-rate-Bps")
    wifi_avail = TimeSeries("wifi-available-Bps")
    cell_avail = TimeSeries("cell-available-Bps")

    def trace_tick() -> None:
        now = sim.now
        wifi_rates.record(now, wifi_path.aggregate_rate)
        cell_rates.record(now, cell_path.aggregate_rate)
        wifi_avail.record(now, wifi_path.total_available_rate())
        cell_avail.record(now, cell_path.total_available_rate())

    tracer = PeriodicProcess(sim, TRACE_INTERVAL, trace_tick)
    tracer.start(immediate=True)

    # --- run ---------------------------------------------------------------
    conn.open()
    if scenario.download_bytes is not None:
        conn.on_complete(lambda _c: sim.stop())
        sim.run(until=scenario.max_sim_time)
        if conn.completed_at is None:
            raise SimulationError(
                f"{protocol} on {scenario.name}: transfer did not complete "
                f"within {scenario.max_sim_time}s"
            )
        download_time = conn.completed_at
    else:
        sim.run(until=scenario.duration)
        download_time = None

    bytes_received = conn.bytes_received
    energy_at_completion = meter.checkpoint()
    _checkpoint_subflows(sim, conn, bytes_received)

    # --- drain the residual cellular tail --------------------------------
    tracer.stop()
    conn.close()
    rrc_params = profile.rrc[scenario.cell_kind]
    drain = (
        rrc_params.promotion_time + rrc_params.active_hold + rrc_params.tail_time + 1.0
    )
    sim.run(until=sim.now + drain)
    energy_total = meter.checkpoint()

    return RunResult(
        protocol=protocol,
        scenario=scenario.name,
        seed=seed,
        download_time=download_time,
        bytes_received=bytes_received,
        energy_j=energy_total,
        energy_at_completion_j=energy_at_completion,
        energy_series=meter.energy_series,
        wifi_rate_series=wifi_rates,
        cell_rate_series=cell_rates,
        measured_wifi_mbps=_mean_mbps(wifi_avail),
        measured_cell_mbps=_mean_mbps(cell_avail),
        diagnostics=_diagnostics(conn),
    )


def _mean_mbps(series: TimeSeries) -> float:
    """Time-weighted mean of a sampled rate series, in Mbps.

    The step integral weights each sample by how long it held, so
    unevenly spaced samples (a truncated final interval, a tracer
    restart) do not bias the measured bandwidth the way a plain average
    of the raw samples would.
    """
    if len(series) == 0:
        return 0.0
    mean = series.time_weighted_mean()
    return bytes_per_sec_to_mbps(mean) if mean is not None else 0.0


def _checkpoint_subflows(sim: Simulator, conn, conn_bytes: float) -> None:
    """Emit one ``subflow.checkpoint`` per subflow at completion.

    The trace analyzer (CHK306) checks byte conservation from these:
    no subflow above the connection total, and the subflows summing to
    it.  Single-path connections have no subflows and emit nothing.
    """
    trace = _obs.tracer_or_none()
    if trace is None:
        return
    mptcp = getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)
    if mptcp is None or not hasattr(mptcp, "subflows"):
        return
    for sf in mptcp.subflows:
        trace.emit(
            "subflow.checkpoint",
            t=sim.now,
            subflow=sf.name,
            interface=sf.interface_kind.value,
            delivered_bytes=sf.bytes_delivered,
            conn_bytes=conn_bytes,
        )


def _run_packet_scenario(protocol: str, scenario: Scenario, seed: int) -> RunResult:
    """The packet-engine twin of the fluid run path.

    Links come from :meth:`Scenario.packet_links` (same capacity
    factories, same seeded streams); the runner owns the energy meter
    and RRC machine exactly as on the fluid engine, probing delivered
    rates since packet links have no aggregate-rate listeners.
    """
    from repro.net.interface import InterfaceKind as _IK

    sim = Simulator()
    streams = RandomStreams(seed)
    wifi_link, cell_link = scenario.packet_links(sim, streams)
    profile = scenario.profile
    cell_kind = scenario.cell_kind

    meter = EnergyMeter(sim, profile, direction=scenario.direction)
    rrc = RrcMachine(sim, profile.rrc[cell_kind])
    rrc.on_state_change(lambda _t, state: meter.set_rrc_state(cell_kind, state))
    meter.add_one_shot(profile.wifi_activation_j)

    if scenario.download_bytes is not None:
        source = FiniteSource(scenario.download_bytes)
    else:
        source = InfiniteSource()
    conn = build_protocol(
        protocol,
        sim,
        wifi_link,
        cell_link,
        source,
        profile=profile,
        config=scenario.emptcp_config,
        direction=scenario.direction,
        engine="packet",
        cell_kind=cell_kind,
        meter=meter,
        rrc=rrc,
    )

    # The eMPTCP adapter probes rates into the shared meter itself;
    # plain packet protocols need the runner's prober.
    prober: Optional[PeriodicProcess] = None
    if not hasattr(conn, "bytes_by_kind"):
        acked_cursor: Dict[int, float] = {}

        def probe() -> None:
            for i, subflow in enumerate(conn.subflows):
                kind = _IK.WIFI if i == 0 else cell_kind
                acked = subflow.bytes_acked_total
                rate = (acked - acked_cursor.get(i, 0.0)) / 0.25
                acked_cursor[i] = acked
                meter.set_rate(kind, max(0.0, rate))
                if kind.is_cellular and rate > 0:
                    rrc.on_activity(sim.now)

        prober = PeriodicProcess(sim, 0.25, probe)
        prober.start()

    # --- tracing ---------------------------------------------------------
    wifi_rates = TimeSeries("wifi-rate-Bps")
    cell_rates = TimeSeries("cell-rate-Bps")
    wifi_avail = TimeSeries("wifi-available-Bps")
    cell_avail = TimeSeries("cell-available-Bps")
    delivered_cursor = {_IK.WIFI: 0.0, cell_kind: 0.0}

    def trace_tick() -> None:
        now = sim.now
        by_kind = _packet_bytes_by_kind(conn, cell_kind)
        for kind, series in ((_IK.WIFI, wifi_rates), (cell_kind, cell_rates)):
            delivered = by_kind.get(kind, 0.0)
            series.record(
                now, (delivered - delivered_cursor[kind]) / TRACE_INTERVAL
            )
            delivered_cursor[kind] = delivered
        wifi_avail.record(now, wifi_link.capacity.rate)
        cell_avail.record(now, cell_link.capacity.rate)

    tracer = PeriodicProcess(sim, TRACE_INTERVAL, trace_tick)
    tracer.start(immediate=True)

    # --- run -------------------------------------------------------------
    conn.open()
    if scenario.download_bytes is not None:
        conn.on_complete(lambda _c: sim.stop())
        sim.run(until=scenario.max_sim_time)
        if conn.completed_at is None:
            raise SimulationError(
                f"{protocol} on {scenario.name} (packet engine): transfer "
                f"did not complete within {scenario.max_sim_time}s"
            )
        download_time = conn.completed_at
    else:
        sim.run(until=scenario.duration)
        download_time = None

    bytes_received = conn.bytes_received
    energy_at_completion = meter.checkpoint()
    _checkpoint_packet_subflows(sim, conn, cell_kind)

    # --- drain the residual cellular tail --------------------------------
    tracer.stop()
    conn.close()
    if prober is not None:
        prober.stop()
        meter.set_rate(_IK.WIFI, 0.0)
        meter.set_rate(cell_kind, 0.0)
    rrc_params = profile.rrc[cell_kind]
    drain = (
        rrc_params.promotion_time + rrc_params.active_hold + rrc_params.tail_time + 1.0
    )
    sim.run(until=sim.now + drain)
    energy_total = meter.checkpoint()

    return RunResult(
        protocol=protocol,
        scenario=scenario.name,
        seed=seed,
        download_time=download_time,
        bytes_received=bytes_received,
        energy_j=energy_total,
        energy_at_completion_j=energy_at_completion,
        energy_series=meter.energy_series,
        wifi_rate_series=wifi_rates,
        cell_rate_series=cell_rates,
        measured_wifi_mbps=_mean_mbps(wifi_avail),
        measured_cell_mbps=_mean_mbps(cell_avail),
        diagnostics=_packet_diagnostics(conn, cell_kind),
    )


def _packet_mptcp_of(conn):
    """The underlying PacketMptcpConnection of any packet protocol."""
    return getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)


def _packet_bytes_by_kind(conn, cell_kind) -> Dict:
    """Unique delivered bytes per interface for any packet protocol."""
    if hasattr(conn, "bytes_by_kind"):
        return conn.bytes_by_kind()
    from repro.net.interface import InterfaceKind as _IK

    out = {_IK.WIFI: 0.0, cell_kind: 0.0}
    mp = _packet_mptcp_of(conn)
    if mp is not None:
        for i in range(len(mp.subflows)):
            kind = _IK.WIFI if i == 0 else cell_kind
            out[kind] = out.get(kind, 0.0) + mp.subflow_delivered[i]
    return out


def _checkpoint_packet_subflows(sim: Simulator, conn, cell_kind) -> None:
    """Packet twin of :func:`_checkpoint_subflows` (same CHK306 events).

    ``subflow_delivered`` counts unique DSN bytes, so the subflows sum
    exactly to in-order delivery plus whatever still sits in the
    reassembly buffer (zero at completion; nonzero only when a fixed
    measurement window cut the run mid-flight).
    """
    trace = _obs.tracer_or_none()
    if trace is None:
        return
    from repro.net.interface import InterfaceKind as _IK

    mp = _packet_mptcp_of(conn)
    if mp is None:
        return
    conn_bytes = mp.bytes_delivered + mp.reassembly_buffered
    for i, sf in enumerate(mp.subflows):
        kind = _IK.WIFI if i == 0 else cell_kind
        trace.emit(
            "subflow.checkpoint",
            t=sim.now,
            subflow=sf.name,
            interface=kind.value,
            delivered_bytes=mp.subflow_delivered[i],
            conn_bytes=conn_bytes,
        )


def _packet_diagnostics(conn, cell_kind) -> Dict[str, float]:
    """Pull counters off a packet-engine connection."""
    from repro.net.interface import InterfaceKind as _IK

    diag: Dict[str, float] = {}
    mp = _packet_mptcp_of(conn)
    if mp is not None:
        diag["subflows"] = float(len(mp.subflows))
        diag["reinjections"] = float(mp.reinjections)
        for kind, total in _packet_bytes_by_kind(conn, cell_kind).items():
            diag[f"{kind.value}_bytes"] = total
    port_subflow = getattr(conn, "subflow", None)
    if callable(port_subflow):
        for kind in (_IK.WIFI, cell_kind):
            view = port_subflow(kind)
            diag[f"{kind.value}_suspends"] = float(
                view.suspend_count if view is not None else 0.0
            )
    controller = getattr(conn, "controller", None)
    if controller is not None:
        diag["decision_switches"] = float(controller.switches)
    delayed = getattr(conn, "delayed", None)
    if delayed is not None:
        diag["cell_established"] = 1.0 if delayed.done else 0.0
        if delayed.established_at is not None:
            diag["cell_established_at"] = delayed.established_at
    return diag


def _diagnostics(conn) -> Dict[str, float]:
    """Pull per-protocol counters off whatever connection type ran."""
    diag: Dict[str, float] = {}
    mptcp = getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)
    if mptcp is not None and hasattr(mptcp, "subflows"):
        diag["subflows"] = float(len(mptcp.subflows))
        diag["mp_prio_events"] = float(
            sum(1 for opt in mptcp.option_log if isinstance(opt, MpPrio))
        )
        for sf in mptcp.subflows:
            key = sf.interface_kind.value
            diag[f"{key}_bytes"] = diag.get(f"{key}_bytes", 0.0) + sf.bytes_delivered
            diag[f"{key}_suspends"] = (
                diag.get(f"{key}_suspends", 0.0) + sf.suspend_count
            )
    controller = getattr(conn, "controller", None)
    if controller is not None:
        diag["decision_switches"] = float(controller.switches)
    delayed = getattr(conn, "delayed", None)
    if delayed is not None:
        diag["cell_established"] = 1.0 if delayed.done else 0.0
        if delayed.established_at is not None:
            diag["cell_established_at"] = delayed.established_at
    if hasattr(conn, "failovers"):
        diag["failovers"] = float(conn.failovers)
    if hasattr(conn, "epochs"):
        diag["mdp_epochs"] = float(conn.epochs)
    return diag
