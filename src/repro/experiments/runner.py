"""Run one protocol on one scenario and measure what the paper measures.

``run_scenario`` is engine-agnostic: it resolves the named backend in
the :mod:`repro.engines` registry, applies the capability gate
(protocol supported, scenario features modelled — the same canonical
check CHK243 runs pre-dispatch), and hands off to the engine's
registered ``run`` hook.  No backend is special-cased here; adding an
engine is a registration, not a runner edit.

The rest of this module is the *fluid* backend's implementation —
the rate-based reference model behind the §4/§5 results:

* build fresh paths/capacity processes/interferers from the scenario's
  factories, with per-component seeded random streams;
* wire the energy side: meter, cellular RRC machine, WiFi activation
  burst, per-path aggregate-rate listeners;
* drive the simulation to transfer completion (or for the fixed
  measurement window), then drain the residual cellular tail;
* return a :class:`~repro.experiments.scenario.RunResult` with energy,
  time, bytes, time series, and per-protocol diagnostics.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import obs as _obs
from repro.energy.meter import EnergyMeter
from repro.energy.power import Direction
from repro.energy.rrc import RrcMachine
from repro.engines import DEFAULT_ENGINE, get_engine, validate_run
from repro.errors import SimulationError
from repro.experiments.protocols import build_protocol
from repro.experiments.scenario import RunResult, Scenario
from repro.mptcp.options import MpPrio
from repro.net.contention import WiFiChannel
from repro.net.interface import InterfaceKind, NetworkInterface
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams
from repro.sim.trace import TimeSeries
from repro.tcp.connection import FiniteSource, InfiniteSource
from repro.units import bytes_per_sec_to_mbps

#: Sampling interval for the result's rate/capacity traces, seconds.
TRACE_INTERVAL = 1.0


def run_scenario(
    protocol: str, scenario: Scenario, seed: int = 0, engine: str = DEFAULT_ENGINE
) -> RunResult:
    """Execute one (protocol, scenario, seed) run on the chosen engine.

    ``engine`` names any backend registered in :mod:`repro.engines`:
    ``"fluid"`` is the rate-based model used throughout §4/§5,
    ``"packet"`` replays the same scenario at segment granularity, and
    ``"flow"`` uses the analytic vectorized tier.  All backends
    produce the same :class:`RunResult` shape, flow through the same
    caching/trace machinery, and emit the same observability events.

    Unknown engines, unsupported protocols, and scenario features the
    backend does not model all raise
    :class:`~repro.errors.ConfigurationError` here — before any
    simulation state exists — with the registry's canonical messages.
    """
    eng = get_engine(engine)
    validate_run(eng, protocol, scenario)
    return eng.run(protocol, scenario, seed)


def build_paths(
    sim: Simulator, scenario: Scenario, streams: RandomStreams
) -> Tuple[NetworkPath, NetworkPath, Optional[WiFiChannel]]:
    """Instantiate the WiFi and cellular paths for one run (the fluid
    engine's scenario lowering)."""
    wifi_cap = scenario.wifi_capacity(streams.stream("wifi-capacity"))
    cell_cap = scenario.cell_capacity(streams.stream("cell-capacity"))
    channel = WiFiChannel(wifi_cap) if scenario.interferers is not None else None
    wifi_path = NetworkPath(
        NetworkInterface(InterfaceKind.WIFI),
        wifi_cap,
        base_rtt=scenario.wifi_rtt,
        loss_rate=scenario.wifi_loss,
        channel=channel,
        name="wifi",
    )
    cell_path = NetworkPath(
        NetworkInterface(scenario.cell_kind),
        cell_cap,
        base_rtt=scenario.cell_rtt,
        loss_rate=scenario.cell_loss,
        name=scenario.cell_kind.value,
    )
    wifi_path.attach(sim)
    cell_path.attach(sim)
    if channel is not None and scenario.interferers is not None:
        scenario.interferers(sim, channel, streams.stream("interferers"))
    return wifi_path, cell_path, channel


def setup_energy(
    sim: Simulator,
    profile,
    cell_kind: InterfaceKind,
    wifi_path: NetworkPath,
    cell_path: NetworkPath,
    direction: Direction = Direction.DOWN,
) -> Tuple[EnergyMeter, RrcMachine]:
    """Wire the energy side of a run: meter, cellular RRC machine on the
    cellular path, per-path aggregate-rate listeners, and the WiFi
    activation burst (paid once per run on every strategy)."""
    meter = EnergyMeter(sim, profile, direction=direction)
    rrc = RrcMachine(sim, profile.rrc[cell_kind])
    cell_path.rrc = rrc
    rrc.on_state_change(lambda _t, state: meter.set_rrc_state(cell_kind, state))
    wifi_path.on_aggregate_rate(
        lambda _t, rate: meter.set_rate(InterfaceKind.WIFI, rate)
    )
    cell_path.on_aggregate_rate(lambda _t, rate: meter.set_rate(cell_kind, rate))
    meter.add_one_shot(profile.wifi_activation_j)
    return meter, rrc


def run_fluid_scenario(protocol: str, scenario: Scenario, seed: int = 0) -> RunResult:
    """Execute one (protocol, scenario, seed) run on the fluid engine."""
    sim = Simulator()
    streams = RandomStreams(seed)
    wifi_path, cell_path, _channel = build_paths(sim, scenario, streams)
    profile = scenario.profile
    meter, _rrc = setup_energy(
        sim, profile, scenario.cell_kind, wifi_path, cell_path, scenario.direction
    )

    # --- workload and protocol ------------------------------------------
    if scenario.download_bytes is not None:
        source = FiniteSource(scenario.download_bytes)
    else:
        source = InfiniteSource()
    conn = build_protocol(
        protocol,
        sim,
        wifi_path,
        cell_path,
        source,
        profile=profile,
        config=scenario.emptcp_config,
        rng=streams.stream("protocol"),
        direction=scenario.direction,
    )

    # --- tracing ---------------------------------------------------------
    wifi_rates = TimeSeries("wifi-rate-Bps")
    cell_rates = TimeSeries("cell-rate-Bps")
    wifi_avail = TimeSeries("wifi-available-Bps")
    cell_avail = TimeSeries("cell-available-Bps")

    def trace_tick() -> None:
        now = sim.now
        wifi_rates.record(now, wifi_path.aggregate_rate)
        cell_rates.record(now, cell_path.aggregate_rate)
        wifi_avail.record(now, wifi_path.total_available_rate())
        cell_avail.record(now, cell_path.total_available_rate())

    tracer = PeriodicProcess(sim, TRACE_INTERVAL, trace_tick)
    tracer.start(immediate=True)

    # --- run ---------------------------------------------------------------
    conn.open()
    if scenario.download_bytes is not None:
        conn.on_complete(lambda _c: sim.stop())
        sim.run(until=scenario.max_sim_time)
        if conn.completed_at is None:
            raise SimulationError(
                f"{protocol} on {scenario.name}: transfer did not complete "
                f"within {scenario.max_sim_time}s"
            )
        download_time = conn.completed_at
    else:
        sim.run(until=scenario.duration)
        download_time = None

    bytes_received = conn.bytes_received
    energy_at_completion = meter.checkpoint()
    _checkpoint_subflows(sim, conn, bytes_received)

    # --- drain the residual cellular tail --------------------------------
    tracer.stop()
    conn.close()
    rrc_params = profile.rrc[scenario.cell_kind]
    drain = (
        rrc_params.promotion_time + rrc_params.active_hold + rrc_params.tail_time + 1.0
    )
    sim.run(until=sim.now + drain)
    energy_total = meter.checkpoint()

    return RunResult(
        protocol=protocol,
        scenario=scenario.name,
        seed=seed,
        download_time=download_time,
        bytes_received=bytes_received,
        energy_j=energy_total,
        energy_at_completion_j=energy_at_completion,
        energy_series=meter.energy_series,
        wifi_rate_series=wifi_rates,
        cell_rate_series=cell_rates,
        measured_wifi_mbps=_mean_mbps(wifi_avail),
        measured_cell_mbps=_mean_mbps(cell_avail),
        diagnostics=_diagnostics(conn),
    )


def _mean_mbps(series: TimeSeries) -> float:
    """Time-weighted mean of a sampled rate series, in Mbps.

    The step integral weights each sample by how long it held, so
    unevenly spaced samples (a truncated final interval, a tracer
    restart) do not bias the measured bandwidth the way a plain average
    of the raw samples would.
    """
    if len(series) == 0:
        return 0.0
    mean = series.time_weighted_mean()
    return bytes_per_sec_to_mbps(mean) if mean is not None else 0.0


def _checkpoint_subflows(sim: Simulator, conn, conn_bytes: float) -> None:
    """Emit one ``subflow.checkpoint`` per subflow at completion.

    The trace analyzer (CHK306) checks byte conservation from these:
    no subflow above the connection total, and the subflows summing to
    it.  Single-path connections have no subflows and emit nothing.
    """
    trace = _obs.tracer_or_none()
    if trace is None:
        return
    mptcp = getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)
    if mptcp is None or not hasattr(mptcp, "subflows"):
        return
    for sf in mptcp.subflows:
        trace.emit(
            "subflow.checkpoint",
            t=sim.now,
            subflow=sf.name,
            interface=sf.interface_kind.value,
            delivered_bytes=sf.bytes_delivered,
            conn_bytes=conn_bytes,
        )


def _diagnostics(conn) -> Dict[str, float]:
    """Pull per-protocol counters off whatever connection type ran."""
    diag: Dict[str, float] = {}
    mptcp = getattr(conn, "mptcp", conn if hasattr(conn, "subflows") else None)
    if mptcp is not None and hasattr(mptcp, "subflows"):
        diag["subflows"] = float(len(mptcp.subflows))
        diag["mp_prio_events"] = float(
            sum(1 for opt in mptcp.option_log if isinstance(opt, MpPrio))
        )
        for sf in mptcp.subflows:
            key = sf.interface_kind.value
            diag[f"{key}_bytes"] = diag.get(f"{key}_bytes", 0.0) + sf.bytes_delivered
            diag[f"{key}_suspends"] = (
                diag.get(f"{key}_suspends", 0.0) + sf.suspend_count
            )
    controller = getattr(conn, "controller", None)
    if controller is not None:
        diag["decision_switches"] = float(controller.switches)
    delayed = getattr(conn, "delayed", None)
    if delayed is not None:
        diag["cell_established"] = 1.0 if delayed.done else 0.0
        if delayed.established_at is not None:
            diag["cell_established_at"] = delayed.established_at
    if hasattr(conn, "failovers"):
        diag["failovers"] = float(conn.failovers)
    if hasattr(conn, "epochs"):
        diag["mdp_epochs"] = float(conn.epochs)
    return diag
