"""Fluid-engine entry point for §3.5 delayed subflow establishment.

The κ/τ/veto logic itself lives in :mod:`repro.control.delay` (one
copy, shared with the packet engine); this module keeps the historical
fluid-side surface:

* :func:`minimum_tau` — re-exported unchanged;
* :class:`DelayedSubflowEstablishment` — the original constructor
  signature (an :class:`~repro.mptcp.connection.MPTCPConnection` plus
  an ``establish`` callback), adapted onto the port-based
  :class:`~repro.control.delay.DelayedEstablishment`.
"""

from __future__ import annotations

from typing import Callable

from repro.control.delay import DelayedEstablishment, minimum_tau
from repro.control.port import DeliveryListener
from repro.core.config import EMPTCPConfig
from repro.core.controller import PathUsageController
from repro.core.predictor import BandwidthPredictor
from repro.mptcp.connection import MPTCPConnection
from repro.mptcp.subflow import Subflow
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator

__all__ = ["DelayedSubflowEstablishment", "minimum_tau"]


class _MptcpDelayPort:
    """The slice of :class:`~repro.control.port.DataPlanePort` that
    delayed establishment uses, over a plain MPTCP connection."""

    def __init__(
        self, connection: MPTCPConnection, establish: Callable[[], Subflow]
    ):
        self.connection = connection
        self._establish = establish

    def on_delivery(self, listener: DeliveryListener) -> None:
        self.connection.on_delivery(
            lambda subflow, delivered: listener(
                subflow.interface_kind, delivered
            )
        )

    def join_cellular(self) -> Subflow:
        return self._establish()

    @property
    def is_idle(self) -> bool:
        return self.connection.is_idle

    @property
    def source_exhausted(self) -> bool:
        return self.connection.source.exhausted

    @property
    def completed(self) -> bool:
        return self.connection.completed_at is not None


class DelayedSubflowEstablishment(DelayedEstablishment):
    """§3.5 over the fluid engine (historical constructor signature)."""

    def __init__(
        self,
        sim: Simulator,
        connection: MPTCPConnection,
        config: EMPTCPConfig,
        predictor: BandwidthPredictor,
        controller: PathUsageController,
        establish: Callable[[], Subflow],
        cell_kind: InterfaceKind = InterfaceKind.LTE,
    ):
        super().__init__(
            sim,
            _MptcpDelayPort(connection, establish),
            config,
            predictor,
            controller,
            cell_kind=cell_kind,
        )
        self.connection = connection
