"""Holt-Winters time-series forecasting (§3.2).

The bandwidth predictor forecasts per-interface throughput with
Holt-Winters [30], which He et al. [13] found more accurate than
formula-based TCP throughput predictors.  Network throughput has no
meaningful seasonality at sub-second sampling, so we implement Holt's
linear-trend method (the non-seasonal member of the Holt-Winters
family) with damping-free level/trend smoothing:

    level_t = alpha * x_t + (1 - alpha) * (level_{t-1} + trend_{t-1})
    trend_t = beta * (level_t - level_{t-1}) + (1 - beta) * trend_{t-1}
    forecast(h) = level_t + h * trend_t

Forecasts are floored at zero — a negative throughput prediction is
meaningless and would confuse the EIB lookup.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError


class HoltWintersForecaster:
    """Holt linear-trend forecaster over a scalar series."""

    def __init__(self, alpha: float = 0.5, beta: float = 0.3):
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if not 0 <= beta <= 1:
            raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self.level: Optional[float] = None
        self.trend: float = 0.0
        self.n_samples = 0
        self.last_value: Optional[float] = None

    def observe(self, value: float) -> None:
        """Absorb one sample."""
        if value < 0:
            raise ConfigurationError(f"sample must be non-negative, got {value}")
        self.last_value = value
        self.n_samples += 1
        if self.level is None:
            self.level = value
            self.trend = 0.0
            return
        prev_level = self.level
        self.level = self.alpha * value + (1 - self.alpha) * (self.level + self.trend)
        self.trend = self.beta * (self.level - prev_level) + (1 - self.beta) * self.trend

    def forecast(self, horizon: int = 1) -> Optional[float]:
        """``horizon``-step-ahead forecast, floored at zero.

        Returns None before any sample has been observed.
        """
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        if self.level is None:
            return None
        return max(0.0, self.level + horizon * self.trend)

    @property
    def initialized(self) -> bool:
        """True once at least one sample has been absorbed."""
        return self.level is not None

    def reset(self) -> None:
        """Forget all state (tests and ablations)."""
        self.level = None
        self.trend = 0.0
        self.n_samples = 0
        self.last_value = None
