"""The path usage controller (§3.4).

Periodically retrieves current per-interface throughput estimates from
the bandwidth predictor, queries the EIB, and decides which interfaces
to use.  A 10% "safety factor" widens every transition so the system
does not oscillate: continuing the paper's example, when both
interfaces are in use eMPTCP requires a predicted WiFi throughput of
0.552 Mbps — not the raw 0.502 threshold — to move to WiFi-only, and
when on WiFi-only it requires 0.452 Mbps to move back to both.

By default the controller never picks cellular-only (the paper notes
eMPTCP "does not typically switch to using a cellular interface only,
since the expected gain is not much more than using both"); the
``allow_cellular_only`` config flag restores the raw EIB verdict for
ablation studies.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro import obs as _obs
from repro.core.config import EMPTCPConfig
from repro.core.eib import EnergyInformationBase
from repro.core.predictor import BandwidthPredictor
from repro.energy.efficiency import Strategy
from repro.net.interface import InterfaceKind
from repro.sim.trace import TimeSeries


class PathDecision(enum.Enum):
    """Which interfaces the controller wants in use."""

    WIFI_ONLY = "wifi-only"
    BOTH = "both"
    CELLULAR_ONLY = "cellular-only"


_STRATEGY_TO_DECISION = {
    Strategy.WIFI_ONLY: PathDecision.WIFI_ONLY,
    Strategy.BOTH: PathDecision.BOTH,
    Strategy.CELLULAR_ONLY: PathDecision.CELLULAR_ONLY,
}


class PathUsageController:
    """Hysteresis-wrapped EIB decisions from live predictions."""

    def __init__(
        self,
        config: EMPTCPConfig,
        eib: EnergyInformationBase,
        predictor: BandwidthPredictor,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
        initial: PathDecision = PathDecision.BOTH,
    ):
        self.config = config
        self.eib = eib
        self.predictor = predictor
        self.cell_kind = cell_kind
        self.current = initial
        self.switches = 0
        #: Decision history for traces/tests: (time, decision) pairs are
        #: appended by :meth:`decide` when a time is provided.
        self.decision_log: List[Tuple[float, PathDecision]] = []
        self.wifi_prediction_series = TimeSeries("predicted-wifi-mbps")
        self._trace = _obs.tracer_or_none()
        metrics = _obs.metrics_or_none()
        self._decision_counter = (
            metrics.counter("controller.decisions") if metrics is not None else None
        )
        self._switch_counter = (
            metrics.counter("controller.switches") if metrics is not None else None
        )

    # ------------------------------------------------------------------

    def raw_decision(self, wifi_mbps: float, cell_mbps: float) -> PathDecision:
        """The EIB verdict without hysteresis (and without the
        cellular-only veto)."""
        return _STRATEGY_TO_DECISION[self.eib.decide(wifi_mbps, cell_mbps)]

    def decide(self, now: Optional[float] = None) -> PathDecision:
        """Update and return the controller's decision.

        Pulls fresh predictions, applies the EIB thresholds with the
        safety factor relative to the *current* state, applies the
        cellular-only veto, and records the outcome.
        """
        wifi = self.predictor.predict_mbps(InterfaceKind.WIFI)
        cell = self.predictor.predict_mbps(self.cell_kind)
        decision = self._decide_with_hysteresis(wifi, cell)
        if not self.config.allow_cellular_only and decision is PathDecision.CELLULAR_ONLY:
            decision = PathDecision.BOTH
        # Equation (1)'s φ: estimates are only trusted once enough
        # samples exist.  Excluding an interface on fewer than φ
        # samples would act on slow-start noise (and then freeze the
        # untrusted estimate while the subflow is suspended).
        decision = self._require_samples(decision)
        switched = decision is not self.current
        if switched:
            self.switches += 1
            self.current = decision
        if now is not None:
            self.decision_log.append((now, decision))
            self.wifi_prediction_series.record(now, wifi)
        if self._trace is not None:
            cell_only_thr, wifi_only_thr = self.eib.thresholds(cell)
            self._trace.emit(
                "controller.decision",
                t=now if now is not None else 0.0,
                wifi_mbps=wifi,
                cell_mbps=cell,
                raw=self.raw_decision(wifi, cell).value,
                decision=decision.value,
                cell_only_thr_mbps=cell_only_thr,
                wifi_only_thr_mbps=wifi_only_thr,
                safety_factor=self.config.safety_factor,
                switched=switched,
            )
        if self._decision_counter is not None:
            self._decision_counter.inc()
            if switched:
                self._switch_counter.inc()
        return decision

    def _require_samples(self, decision: PathDecision) -> PathDecision:
        phi = self.config.required_samples
        if (
            decision is PathDecision.WIFI_ONLY
            and self.predictor.has_history(self.cell_kind)
            and self.predictor.sample_count(self.cell_kind) < phi
        ):
            return PathDecision.BOTH
        if (
            decision is PathDecision.CELLULAR_ONLY
            and self.predictor.sample_count(InterfaceKind.WIFI) < phi
        ):
            return PathDecision.BOTH
        return decision

    def _decide_with_hysteresis(self, wifi: float, cell: float) -> PathDecision:
        cell_only_thr, wifi_only_thr = self.eib.thresholds(cell)
        sf = self.config.safety_factor
        if self.current is PathDecision.BOTH:
            if wifi >= wifi_only_thr * (1 + sf):
                return PathDecision.WIFI_ONLY
            if wifi < cell_only_thr * (1 - sf):
                return PathDecision.CELLULAR_ONLY
            return PathDecision.BOTH
        if self.current is PathDecision.WIFI_ONLY:
            if wifi < cell_only_thr * (1 - sf):
                return PathDecision.CELLULAR_ONLY
            if wifi < wifi_only_thr * (1 - sf):
                return PathDecision.BOTH
            return PathDecision.WIFI_ONLY
        # CELLULAR_ONLY
        if wifi >= wifi_only_thr * (1 + sf):
            return PathDecision.WIFI_ONLY
        if wifi >= cell_only_thr * (1 + sf):
            return PathDecision.BOTH
        return PathDecision.CELLULAR_ONLY
