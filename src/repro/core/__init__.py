"""eMPTCP — the paper's primary contribution.

The four components of Figure 2, layered on the MPTCP substrate:

* :mod:`repro.core.predictor` — the bandwidth predictor (§3.2), built
  from per-subflow samplers (:mod:`repro.core.sampler`) and Holt-Winters
  forecasters (:mod:`repro.core.forecast`);
* :mod:`repro.core.eib` — the energy information base (§3.3, Table 2);
* :mod:`repro.core.controller` — the path usage controller with its 10%
  safety factor (§3.4);
* :mod:`repro.core.delay` — delayed subflow establishment (§3.5,
  equation (1));
* :mod:`repro.core.emptcp` — :class:`EMPTCPConnection`, wiring them all
  onto an :class:`~repro.mptcp.connection.MPTCPConnection` (§3.6).
"""

from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.delay import DelayedSubflowEstablishment, minimum_tau
from repro.core.eib import EibEntry, EnergyInformationBase
from repro.core.emptcp import EMPTCPConnection
from repro.core.forecast import HoltWintersForecaster
from repro.core.predictor import BandwidthPredictor
from repro.core.sampler import ThroughputSampler

__all__ = [
    "BandwidthPredictor",
    "DelayedSubflowEstablishment",
    "EMPTCPConfig",
    "EMPTCPConnection",
    "EibEntry",
    "EnergyInformationBase",
    "HoltWintersForecaster",
    "PathDecision",
    "PathUsageController",
    "ThroughputSampler",
    "minimum_tau",
]
