"""Per-subflow throughput sampling (§3.2).

The bandwidth predictor "samples all active subflow throughputs"; the
per-subflow sampling interval δ is derived from the RTT measured during
subflow establishment (the three-way-handshake time).  Each tick, the
sampler divides the bytes delivered since the previous tick by δ and
hands the sample — tagged with the subflow's interface, obtained from
the routing information — to the predictor.

Samples are *not* taken while the subflow is suspended: a deactivated
interface keeps its old observations (the paper's predictor "uses old
observed samples together with new sampled throughputs" once the
interface comes back).
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import EMPTCPConfig
from repro.errors import ProtocolError
from repro.mptcp.subflow import Subflow
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

SampleSink = Callable[[InterfaceKind, float], None]  # (interface, bytes/s)


class ThroughputSampler:
    """Samples one subflow's delivery rate every δ seconds."""

    def __init__(
        self,
        sim: Simulator,
        subflow: Subflow,
        config: EMPTCPConfig,
        sink: SampleSink,
    ):
        if subflow.handshake_rtt is None:
            raise ProtocolError(
                f"subflow {subflow.name} must be established before sampling"
            )
        self.sim = sim
        self.subflow = subflow
        self.sink = sink
        self.delta = config.sampling_interval(subflow.handshake_rtt)
        self.samples_taken = 0
        self._last_bytes = subflow.bytes_delivered
        self._process = PeriodicProcess(sim, self.delta, self._tick)

    def start(self) -> None:
        """Begin sampling (first sample one δ from now)."""
        self._process.start()

    def stop(self) -> None:
        """Stop sampling permanently (subflow closed)."""
        self._process.stop()

    @property
    def running(self) -> bool:
        """True while ticks are scheduled."""
        return self._process.running

    def _tick(self) -> None:
        delivered = self.subflow.bytes_delivered
        if self.subflow.suspended:
            # Keep the byte cursor fresh so the first sample after
            # resumption does not smear the idle gap into a rate.
            self._last_bytes = delivered
            return
        rate = (delivered - self._last_bytes) / self.delta
        if rate <= 0 and not self.subflow.sending:
            # Application-limited idle window (nothing to send): this is
            # not a bandwidth measurement.  A zero while *trying* to
            # send (stall) is real and is kept.
            self._last_bytes = delivered
            return
        self._last_bytes = delivered
        self.samples_taken += 1
        self.sink(self.subflow.interface_kind, rate)
