"""The Energy Information Base (§3.3, Table 2).

The EIB is computed *offline* from the device's parameterised energy
model (any model can populate it — the paper cites [33, 34]) and holds,
for each cellular throughput, the pair of WiFi-throughput transition
points:

* below the **cellular-only threshold**, TCP over cellular alone is the
  most energy-efficient per byte;
* at or above the **WiFi-only threshold**, TCP over WiFi alone is;
* in between, using both interfaces (MPTCP) wins — the "V" of Figure 3.

Per the paper, efficiency is defined in the large-transfer limit
(per-byte steady-state energy; the remaining transfer size is unknown,
so fixed overheads are not amortised into the EIB itself).

Thresholds are found by bisection on the continuous per-byte-energy
difference, which is monotone in the WiFi rate for any power model
that is affine-or-concave in throughput, then cached on a cellular-rate
grid and linearly interpolated at lookup time.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy.device import DeviceProfile
from repro.energy.efficiency import Strategy, per_byte_energy
from repro.energy.power import Direction
from repro.errors import EnergyModelError
from repro.net.interface import InterfaceKind

#: Upper bound for threshold searches, Mbps.  Beyond this we call the
#: threshold infinite (WiFi-only never wins at that cellular rate).
_MAX_WIFI_MBPS = 1_000.0


@dataclass(frozen=True)
class EibEntry:
    """One EIB row (a row of Table 2).

    ``cellular_only_below``: use cellular only when the observed WiFi
    throughput is below this, Mbps.
    ``wifi_only_above``: use WiFi only when at or above this, Mbps.
    In between, use both.
    """

    cell_mbps: float
    cellular_only_below: float
    wifi_only_above: float


class EnergyInformationBase:
    """Offline-computed transition thresholds, indexed by cellular rate."""

    def __init__(
        self,
        profile: DeviceProfile,
        cell_kind: InterfaceKind = InterfaceKind.LTE,
        cell_grid_mbps: Optional[Sequence[float]] = None,
        direction: Direction = Direction.DOWN,
    ):
        if not cell_kind.is_cellular:
            raise EnergyModelError(f"{cell_kind} is not a cellular interface")
        self.profile = profile
        self.cell_kind = cell_kind
        self.direction = direction
        if cell_grid_mbps is None:
            cell_grid_mbps = [0.1 * i for i in range(1, 301)]  # 0.1 .. 30 Mbps
        grid = sorted(set(float(c) for c in cell_grid_mbps))
        if not grid or grid[0] <= 0:
            raise EnergyModelError("cellular grid must be positive")
        self._grid = grid
        self._entries: List[EibEntry] = [self._compute_entry(c) for c in grid]

    # ------------------------------------------------------------------
    # construction

    def _per_byte(self, strategy: Strategy, wifi: float, cell: float) -> float:
        return per_byte_energy(
            self.profile, strategy, wifi, cell, self.cell_kind, self.direction
        )

    def _compute_entry(self, cell: float) -> EibEntry:
        wifi_only = self._bisect_threshold(
            cell,
            lambda w: self._per_byte(Strategy.WIFI_ONLY, w, cell)
            - self._per_byte(Strategy.BOTH, w, cell),
        )
        # Below the cellular-only threshold, BOTH is *worse* than
        # cellular alone (the WiFi radio's base power buys almost no
        # rate), so the positive-then-negative difference is
        # BOTH - CELLULAR_ONLY.
        cell_only = self._bisect_threshold(
            cell,
            lambda w: self._per_byte(Strategy.BOTH, w, cell)
            - self._per_byte(Strategy.CELLULAR_ONLY, w, cell),
        )
        return EibEntry(cell, cellular_only_below=cell_only, wifi_only_above=wifi_only)

    @staticmethod
    def _bisect_threshold(cell: float, diff) -> float:
        """Smallest WiFi rate where ``diff(w) <= 0``.

        ``diff`` is positive while the single-path strategy is worse
        than BOTH and decreases in the WiFi rate; the root is the
        transition point.
        """
        lo, hi = 1e-6, _MAX_WIFI_MBPS
        if diff(lo) <= 0:
            return lo
        if diff(hi) > 0:
            return math.inf
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if diff(mid) > 0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    # ------------------------------------------------------------------
    # queries

    def thresholds(self, cell_mbps: float) -> Tuple[float, float]:
        """``(cellular_only_below, wifi_only_above)`` at a cellular rate,
        linearly interpolated between grid rows and clamped at the grid
        edges."""
        if cell_mbps < 0:
            raise EnergyModelError("cell_mbps must be non-negative")
        grid = self._grid
        if cell_mbps <= grid[0]:
            entry = self._entries[0]
            return entry.cellular_only_below, entry.wifi_only_above
        if cell_mbps >= grid[-1]:
            entry = self._entries[-1]
            return entry.cellular_only_below, entry.wifi_only_above
        idx = bisect_left(grid, cell_mbps)
        lo, hi = self._entries[idx - 1], self._entries[idx]
        frac = (cell_mbps - lo.cell_mbps) / (hi.cell_mbps - lo.cell_mbps)

        def lerp(a: float, b: float) -> float:
            if math.isinf(a) or math.isinf(b):
                return math.inf
            return a + frac * (b - a)

        return (
            lerp(lo.cellular_only_below, hi.cellular_only_below),
            lerp(lo.wifi_only_above, hi.wifi_only_above),
        )

    def decide(self, wifi_mbps: float, cell_mbps: float) -> Strategy:
        """The raw (hysteresis-free) EIB verdict for observed rates."""
        cell_only, wifi_only = self.thresholds(cell_mbps)
        if wifi_mbps < cell_only:
            return Strategy.CELLULAR_ONLY
        if wifi_mbps >= wifi_only:
            return Strategy.WIFI_ONLY
        return Strategy.BOTH

    def entry_at(self, cell_mbps: float) -> EibEntry:
        """An interpolated entry at an arbitrary cellular rate."""
        cell_only, wifi_only = self.thresholds(cell_mbps)
        return EibEntry(cell_mbps, cell_only, wifi_only)

    def table_rows(self, cell_rates_mbps: Sequence[float]) -> List[EibEntry]:
        """Rows in Table 2's format for the requested cellular rates."""
        return [self.entry_at(c) for c in cell_rates_mbps]


_EIB_CACHE: Dict[Tuple[str, InterfaceKind, Direction], EnergyInformationBase] = {}


def cached_eib(
    profile: DeviceProfile,
    cell_kind: InterfaceKind = InterfaceKind.LTE,
    direction: Direction = Direction.DOWN,
) -> EnergyInformationBase:
    """A process-wide cache of EIBs — they are pure functions of the
    device profile, and building one scans a few hundred grid rows."""
    key = (profile.name, cell_kind, direction)
    if key not in _EIB_CACHE:
        _EIB_CACHE[key] = EnergyInformationBase(profile, cell_kind, direction=direction)
    return _EIB_CACHE[key]
