"""The eMPTCP connection: the paper's architecture (Figure 2) wired up.

:class:`EMPTCPConnection` composes a standard
:class:`~repro.mptcp.connection.MPTCPConnection` (WiFi primary,
auto-join disabled) with the four eMPTCP components:

* the **bandwidth predictor** starts sampling each subflow as soon as
  it establishes;
* the **delayed-subflow module** owns the decision of when the cellular
  subflow is joined (κ bytes / τ timer / efficiency + idle vetoes);
* once the cellular subflow is up, the **path usage controller** runs
  periodically, consulting predictor + **EIB**, and applies its
  decisions through MP_PRIO suspension/resumption with the §3.6 re-use
  tweaks (no RFC 2861 window reset, zeroed RTT).

No application involvement is required: the connection exposes the same
open/complete surface as plain MPTCP.
"""

from __future__ import annotations

import random as _random
from typing import Callable, List, Optional

from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.delay import DelayedSubflowEstablishment
from repro.core.eib import EnergyInformationBase, cached_eib
from repro.core.predictor import BandwidthPredictor
from repro.energy.device import DeviceProfile
from repro.errors import ConfigurationError
from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.mptcp.subflow import Subflow
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.tcp.connection import ByteSource


class EMPTCPConnection:
    """An energy-aware MPTCP connection (the public API of this repro)."""

    def __init__(
        self,
        sim: Simulator,
        wifi_path: NetworkPath,
        cellular_path: NetworkPath,
        source: ByteSource,
        profile: DeviceProfile,
        config: Optional[EMPTCPConfig] = None,
        rng: Optional[_random.Random] = None,
        eib: Optional[EnergyInformationBase] = None,
        name: str = "emptcp",
    ):
        if not wifi_path.interface.kind.is_wifi:
            raise ConfigurationError("wifi_path must run over a WiFi interface")
        if not cellular_path.interface.kind.is_cellular:
            raise ConfigurationError(
                "cellular_path must run over a cellular interface"
            )
        self.sim = sim
        self.wifi_path = wifi_path
        self.cellular_path = cellular_path
        self.profile = profile
        self.config = config or EMPTCPConfig()
        self.cell_kind = cellular_path.interface.kind
        self.name = name

        self.mptcp = MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.FULL,
            rng=rng,
            auto_join=False,
            rfc2861_idle_reset=not self.config.disable_rfc2861_reset,
            reuse_reset_rtt=self.config.reuse_reset_rtt,
            name=name,
        )
        self.predictor = BandwidthPredictor(sim, self.config)
        self.eib = eib or cached_eib(profile, self.cell_kind)
        self.controller = PathUsageController(
            self.config,
            self.eib,
            self.predictor,
            cell_kind=self.cell_kind,
            initial=PathDecision.WIFI_ONLY,
        )
        self.delayed = DelayedSubflowEstablishment(
            sim,
            self.mptcp,
            self.config,
            self.predictor,
            self.controller,
            establish=self._join_cellular,
            cell_kind=self.cell_kind,
        )
        self._decision_loop = PeriodicProcess(
            sim, self.config.decision_interval, self._control_tick
        )
        self._complete_listeners: List[Callable[["EMPTCPConnection"], None]] = []
        self.mptcp.on_subflow_established(self._subflow_up)
        self.mptcp.on_complete(self._on_mptcp_complete)

    # ------------------------------------------------------------------
    # lifecycle

    def open(self) -> None:
        """Open the connection: WiFi subflow first, τ timer armed."""
        self.mptcp.open()
        self.delayed.start()

    def close(self) -> None:
        """Close all subflows and stop the control plane."""
        self._stop_control_plane()
        self.mptcp.close()

    def on_complete(self, listener: Callable[["EMPTCPConnection"], None]) -> None:
        """Subscribe to transfer completion."""
        self._complete_listeners.append(listener)

    def _on_mptcp_complete(self, _conn: MPTCPConnection) -> None:
        self._stop_control_plane()
        for listener in list(self._complete_listeners):
            listener(self)

    def _stop_control_plane(self) -> None:
        self._decision_loop.stop()
        self.predictor.stop()
        self.delayed.stop()

    # ------------------------------------------------------------------
    # wiring

    def _subflow_up(self, subflow: Subflow) -> None:
        self.predictor.attach_subflow(subflow)
        if subflow.interface_kind.is_cellular:
            # Both interfaces are in play from here on; start the
            # periodic path-usage decisions.
            self.controller.current = PathDecision.BOTH
            self._decision_loop.start()

    def _join_cellular(self) -> Subflow:
        return self.mptcp.add_subflow(self.cellular_path)

    def _control_tick(self) -> None:
        if (
            self.predictor.sample_count(self.cell_kind)
            < self.config.required_samples
        ):
            # The cellular subflow was just established: keep probing
            # it until φ samples exist (equation (1)'s requirement)
            # instead of suspending it on the initial-bandwidth guess.
            decision = PathDecision.BOTH
            self.controller.current = decision
        else:
            decision = self.controller.decide(now=self.sim.now)
        self._apply(decision)

    def _apply(self, decision: PathDecision) -> None:
        wifi_sf = self.mptcp.subflow_for(self.wifi_path.interface.kind)
        cell_sf = self.mptcp.subflow_for(self.cell_kind)
        if wifi_sf is None or cell_sf is None:
            return
        if not (wifi_sf.established and cell_sf.established):
            return
        want_wifi = decision in (PathDecision.WIFI_ONLY, PathDecision.BOTH)
        want_cell = decision in (PathDecision.CELLULAR_ONLY, PathDecision.BOTH)
        self._set_usage(wifi_sf, want_wifi)
        self._set_usage(cell_sf, want_cell)

    def _set_usage(self, subflow: Subflow, in_use: bool) -> None:
        if in_use and subflow.suspended:
            self.mptcp.set_low_priority(subflow, low=False)
        elif not in_use and not subflow.suspended:
            self.mptcp.set_low_priority(subflow, low=True)

    # ------------------------------------------------------------------
    # views (delegating to the underlying MPTCP connection)

    @property
    def completed_at(self) -> Optional[float]:
        """Transfer completion time (None while running)."""
        return self.mptcp.completed_at

    @property
    def bytes_received(self) -> float:
        """Total bytes delivered across subflows."""
        return self.mptcp.bytes_received

    @property
    def subflows(self) -> List[Subflow]:
        """All subflows created so far."""
        return self.mptcp.subflows

    @property
    def option_log(self):
        """MP_CAPABLE / MP_JOIN / MP_PRIO event log."""
        return self.mptcp.option_log

    @property
    def decision(self) -> PathDecision:
        """The controller's current decision."""
        return self.controller.current

    def notify_data(self) -> None:
        """Wake idle subflows after new application data was queued
        (persistent connections fetching another object)."""
        self.mptcp.notify_data()
