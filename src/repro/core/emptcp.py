"""The eMPTCP connection over the fluid engine.

:class:`EMPTCPConnection` is a thin data-plane adapter: it composes a
standard :class:`~repro.mptcp.connection.MPTCPConnection` (WiFi
primary, auto-join disabled, the §3.6 re-use tweaks applied on
resume) and implements the
:class:`~repro.control.port.DataPlanePort` protocol for the shared
:class:`~repro.control.plane.ControlPlane`, which owns all policy:
predictor sampling, EIB consultation, the hysteresis controller, and
κ/τ delayed establishment.

No application involvement is required: the connection exposes the same
open/complete surface as plain MPTCP.
"""

from __future__ import annotations

import random as _random
from typing import Callable, List, Optional

from repro.control.delay import DelayedEstablishment
from repro.control.plane import ControlPlane
from repro.core.config import EMPTCPConfig
from repro.core.controller import PathDecision, PathUsageController
from repro.core.eib import EnergyInformationBase
from repro.core.predictor import BandwidthPredictor
from repro.energy.device import DeviceProfile
from repro.energy.power import Direction
from repro.errors import ConfigurationError
from repro.mptcp.connection import MptcpMode, MPTCPConnection
from repro.mptcp.subflow import Subflow
from repro.net.interface import InterfaceKind
from repro.net.path import NetworkPath
from repro.sim.engine import Simulator
from repro.tcp.connection import ByteSource


class EMPTCPConnection:
    """An energy-aware MPTCP connection (the public API of this repro)."""

    def __init__(
        self,
        sim: Simulator,
        wifi_path: NetworkPath,
        cellular_path: NetworkPath,
        source: ByteSource,
        profile: DeviceProfile,
        config: Optional[EMPTCPConfig] = None,
        rng: Optional[_random.Random] = None,
        eib: Optional[EnergyInformationBase] = None,
        direction: Direction = Direction.DOWN,
        name: str = "emptcp",
    ):
        if not wifi_path.interface.kind.is_wifi:
            raise ConfigurationError("wifi_path must run over a WiFi interface")
        if not cellular_path.interface.kind.is_cellular:
            raise ConfigurationError(
                "cellular_path must run over a cellular interface"
            )
        self.sim = sim
        self.wifi_path = wifi_path
        self.cellular_path = cellular_path
        self.profile = profile
        self.config = config or EMPTCPConfig()
        self.cell_kind = cellular_path.interface.kind
        self.name = name

        self.mptcp = MPTCPConnection(
            sim,
            primary_path=wifi_path,
            source=source,
            secondary_paths=[cellular_path],
            mode=MptcpMode.FULL,
            rng=rng,
            auto_join=False,
            rfc2861_idle_reset=not self.config.disable_rfc2861_reset,
            reuse_reset_rtt=self.config.reuse_reset_rtt,
            name=name,
        )
        self.control = ControlPlane(
            sim,
            port=self,
            config=self.config,
            profile=profile,
            cell_kind=self.cell_kind,
            direction=direction,
            eib=eib,
        )
        self._complete_listeners: List[Callable[["EMPTCPConnection"], None]] = []
        self.mptcp.on_subflow_established(self._subflow_up)
        self.mptcp.on_complete(self._on_mptcp_complete)

    # ------------------------------------------------------------------
    # lifecycle

    def open(self) -> None:
        """Open the connection: WiFi subflow first, τ timer armed."""
        self.mptcp.open()
        self.control.start()

    def close(self) -> None:
        """Close all subflows and stop the control plane."""
        self.control.stop()
        self.mptcp.close()

    def on_complete(self, listener: Callable[["EMPTCPConnection"], None]) -> None:
        """Subscribe to transfer completion."""
        self._complete_listeners.append(listener)

    def _on_mptcp_complete(self, _conn: MPTCPConnection) -> None:
        self.control.stop()
        for listener in list(self._complete_listeners):
            listener(self)

    def _subflow_up(self, subflow: Subflow) -> None:
        self.control.subflow_established(subflow)

    # ------------------------------------------------------------------
    # DataPlanePort implementation (what the control plane drives)

    def subflow(self, kind: InterfaceKind) -> Optional[Subflow]:
        """Port: the subflow over ``kind``, if joined."""
        return self.mptcp.subflow_for(kind)

    def join_cellular(self) -> Subflow:
        """Port: establish the cellular subflow (§3.5 commit)."""
        return self.mptcp.add_subflow(self.cellular_path)

    def set_subflow_usage(self, kind: InterfaceKind, in_use: bool) -> None:
        """Port: MP_PRIO suspension/resumption with the §3.6 re-use
        tweaks (no RFC 2861 window reset, zeroed RTT) handled by the
        MPTCP layer."""
        target = self.mptcp.subflow_for(kind)
        if target is None:
            return
        self.mptcp.set_low_priority(target, low=not in_use)

    def on_delivery(self, listener: Callable[[InterfaceKind, float], None]) -> None:
        """Port: delivery events as (interface kind, bytes)."""
        self.mptcp.on_delivery(
            lambda subflow, delivered: listener(
                subflow.interface_kind, delivered
            )
        )

    @property
    def is_idle(self) -> bool:
        """Port: no data moving for roughly one RTT."""
        return self.mptcp.is_idle

    @property
    def source_exhausted(self) -> bool:
        """Port: the application queued no further bytes."""
        return self.mptcp.source.exhausted

    @property
    def completed(self) -> bool:
        """Port: the transfer has finished."""
        return self.mptcp.completed_at is not None

    # ------------------------------------------------------------------
    # views (delegating to the control plane / MPTCP connection)

    @property
    def predictor(self) -> BandwidthPredictor:
        """The §3.2 bandwidth predictor."""
        return self.control.predictor

    @property
    def controller(self) -> PathUsageController:
        """The §3.4 path-usage controller."""
        return self.control.controller

    @property
    def delayed(self) -> DelayedEstablishment:
        """The §3.5 delayed-establishment module."""
        return self.control.delayed

    @property
    def eib(self) -> EnergyInformationBase:
        """The §3.3 energy information base consulted for decisions."""
        return self.control.eib

    @property
    def completed_at(self) -> Optional[float]:
        """Transfer completion time (None while running)."""
        return self.mptcp.completed_at

    @property
    def bytes_received(self) -> float:
        """Total bytes delivered across subflows."""
        return self.mptcp.bytes_received

    @property
    def subflows(self) -> List[Subflow]:
        """All subflows created so far."""
        return self.mptcp.subflows

    @property
    def option_log(self):
        """MP_CAPABLE / MP_JOIN / MP_PRIO event log."""
        return self.mptcp.option_log

    @property
    def decision(self) -> PathDecision:
        """The controller's current decision."""
        return self.control.decision

    def notify_data(self) -> None:
        """Wake idle subflows after new application data was queued
        (persistent connections fetching another object)."""
        self.mptcp.notify_data()
