"""eMPTCP tuning parameters.

Defaults follow the paper's evaluation settings (§4.1): κ = 1 MB,
τ = 3 s, a 10% safety factor, a 5 Mbps initial-bandwidth assumption for
never-activated interfaces (§3.2), and φ = 10 required samples for the
τ lower bound of equation (1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class EMPTCPConfig:
    """All knobs of the eMPTCP control plane."""

    #: κ — bytes that must arrive over WiFi before a cellular subflow is
    #: considered (§3.5).  The paper uses one MB because MPTCP is rarely
    #: more energy-efficient than single-path TCP below that size
    #: (Figure 4).
    kappa_bytes: float = 1_000_000.0

    #: τ — timer that forces cellular-establishment evaluation even if
    #: κ was never reached on a slow WiFi path (§3.5, equation (1)).
    tau_seconds: float = 3.0

    #: The hysteresis "safety factor" of the path usage controller
    #: (§3.4): thresholds are widened by this fraction when switching.
    safety_factor: float = 0.10

    #: Assumed throughput for an interface that has never been activated
    #: (§3.2), so its path gets probed at all.  Mbps.  The floor applies
    #: *only* before the first sample: a deactivated interface keeps
    #: predicting from its old (possibly stale) observations, exactly as
    #: §3.2 describes.
    initial_bandwidth_mbps: float = 5.0

    #: φ — bandwidth samples required after WiFi stabilises before τ may
    #: fire (equation (1)).
    required_samples: int = 10

    #: Holt-Winters smoothing parameters (level / trend).  The trend
    #: weight is deliberately small: per-window byte counts quantise to
    #: whole congestion windows, and an aggressive trend term amplifies
    #: that sampling noise straight across the EIB thresholds,
    #: defeating the 10% safety factor.
    hw_alpha: float = 0.4
    hw_beta: float = 0.1

    #: Sampling interval δ = clamp(multiplier x handshake RTT).  The
    #: window must span several TCP rounds so a sample reflects the
    #: rate rather than whether a round boundary fell inside it.
    delta_rtt_multiplier: float = 6.0
    delta_min: float = 0.5
    delta_max: float = 2.0

    #: How often the path usage controller re-evaluates, seconds.
    decision_interval: float = 0.25

    #: §3.4: "eMPTCP does not typically switch to using a cellular
    #: interface only, since the expected gain is not much more than
    #: using both."  With the default False, cellular-only EIB verdicts
    #: are mapped to BOTH; the ablation benchmarks flip this.
    allow_cellular_only: bool = False

    #: §3.6 re-use tweaks: zero the RTT of a resumed subflow, and
    #: disable the RFC 2861 window reset after idle.
    reuse_reset_rtt: bool = True
    disable_rfc2861_reset: bool = True

    def __post_init__(self) -> None:
        if self.kappa_bytes <= 0:
            raise ConfigurationError("kappa_bytes must be positive")
        if self.tau_seconds <= 0:
            raise ConfigurationError("tau_seconds must be positive")
        if not 0 <= self.safety_factor < 1:
            raise ConfigurationError("safety_factor must be in [0, 1)")
        if self.initial_bandwidth_mbps <= 0:
            raise ConfigurationError("initial_bandwidth_mbps must be positive")
        if self.required_samples < 1:
            raise ConfigurationError("required_samples must be >= 1")
        if not 0 < self.hw_alpha <= 1 or not 0 <= self.hw_beta <= 1:
            raise ConfigurationError("invalid Holt-Winters parameters")
        if self.delta_min <= 0 or self.delta_max < self.delta_min:
            raise ConfigurationError("invalid sampling-interval bounds")
        if self.decision_interval <= 0:
            raise ConfigurationError("decision_interval must be positive")

    def sampling_interval(self, handshake_rtt: float) -> float:
        """δ for a subflow, from its establishment RTT (§3.2)."""
        if handshake_rtt <= 0:
            raise ConfigurationError("handshake_rtt must be positive")
        return min(
            self.delta_max, max(self.delta_min, self.delta_rtt_multiplier * handshake_rtt)
        )

    def tau_satisfies_equation_one(
        self, wifi_bandwidth_bytes_per_sec: float, wifi_rtt: float
    ) -> bool:
        """Check this config's τ against equation (1)'s lower bound for
        a given WiFi operating point (§3.5: τ must allow slow start to
        finish plus φ throughput samples)."""
        from repro.core.delay import minimum_tau

        return self.tau_seconds >= minimum_tau(
            wifi_bandwidth_bytes_per_sec, wifi_rtt, self.required_samples
        )
