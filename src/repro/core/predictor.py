"""The bandwidth predictor (§3.2).

Aggregates per-subflow throughput samples into per-*interface*
forecasts.  Three cases, exactly as the paper describes:

* **Active interface** — samples flow in at interval δ and Holt-Winters
  produces the forecast.
* **Deactivated interface** (was active, currently suspended) — no new
  samples arrive; the forecaster keeps its old state, so predictions
  are made from old observed samples until new ones mix in after
  reactivation.
* **Never-activated interface** — the predictor assumes a non-zero
  initial bandwidth (default 5 Mbps) so eMPTCP will probe the path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import obs as _obs
from repro.core.config import EMPTCPConfig
from repro.core.forecast import HoltWintersForecaster
from repro.core.sampler import ThroughputSampler
from repro.mptcp.subflow import Subflow
from repro.net.interface import InterfaceKind
from repro.sim.engine import Simulator
from repro.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec


class BandwidthPredictor:
    """Per-interface throughput prediction from runtime measurements."""

    def __init__(self, sim: Simulator, config: Optional[EMPTCPConfig] = None):
        self.sim = sim
        self.config = config or EMPTCPConfig()
        self._forecasters: Dict[InterfaceKind, HoltWintersForecaster] = {}
        self._samplers: List[ThroughputSampler] = []
        self.samples_by_kind: Dict[InterfaceKind, int] = {}
        self._last_sample_time: Dict[InterfaceKind, float] = {}
        self._trace = _obs.tracer_or_none()
        self._metrics = _obs.metrics_or_none()
        self._prof = _obs.profiler_or_none()

    # ------------------------------------------------------------------
    # wiring

    def attach_subflow(self, subflow: Subflow) -> ThroughputSampler:
        """Start sampling an established subflow.

        The sample stream is categorised per interface by querying the
        subflow's path binding (the simulator's stand-in for the
        routing-table lookup of §3.6).
        """
        sampler = ThroughputSampler(self.sim, subflow, self.config, self.observe)
        sampler.start()
        self._samplers.append(sampler)
        return sampler

    def observe(self, kind: InterfaceKind, rate_bytes_per_sec: float) -> None:
        """Feed one throughput sample for an interface (bytes/s)."""
        prof = self._prof
        if prof is not None:
            with prof.span("predictor.observe"):
                self._observe_inner(kind, rate_bytes_per_sec)
        else:
            self._observe_inner(kind, rate_bytes_per_sec)

    def _observe_inner(self, kind: InterfaceKind, rate_bytes_per_sec: float) -> None:
        forecaster = self._forecasters.get(kind)
        if forecaster is None:
            forecaster = HoltWintersForecaster(
                alpha=self.config.hw_alpha, beta=self.config.hw_beta
            )
            self._forecasters[kind] = forecaster
        sample_mbps = bytes_per_sec_to_mbps(rate_bytes_per_sec)
        forecaster.observe(sample_mbps)
        self.samples_by_kind[kind] = self.samples_by_kind.get(kind, 0) + 1
        self._last_sample_time[kind] = self.sim.now
        if self._trace is not None:
            forecast = forecaster.forecast(1)
            self._trace.emit(
                "predictor.sample",
                t=self.sim.now,
                interface=kind.value,
                sample_mbps=sample_mbps,
                forecast_mbps=forecast if forecast is not None else sample_mbps,
            )
        if self._metrics is not None:
            self._metrics.counter(f"predictor.samples.{kind.value}").inc()
            self._metrics.histogram(
                f"predictor.sample_mbps.{kind.value}"
            ).observe(sample_mbps)

    def stop(self) -> None:
        """Stop all samplers (connection closed)."""
        for sampler in self._samplers:
            sampler.stop()

    # ------------------------------------------------------------------
    # queries

    def has_history(self, kind: InterfaceKind) -> bool:
        """True once the interface has ever produced a sample."""
        forecaster = self._forecasters.get(kind)
        return forecaster is not None and forecaster.initialized

    def predict_mbps(self, kind: InterfaceKind) -> float:
        """Forecast throughput for an interface, Mbps.

        Only a *never-activated* interface gets the configured initial
        bandwidth (§3.2's probing assumption).  A deactivated interface
        keeps predicting from its old samples, however stale — the
        paper retains old observations until new sampled throughputs
        mix in after reactivation.  Flooring a stale forecast at the
        initial bandwidth would silently over-predict a path last seen
        well below 5 Mbps and hand the controller an estimate no
        measurement ever supported.
        """
        forecaster = self._forecasters.get(kind)
        if forecaster is None or not forecaster.initialized:
            return self.config.initial_bandwidth_mbps
        forecast = forecaster.forecast(1)
        assert forecast is not None
        return forecast

    def sample_age(self, kind: InterfaceKind) -> Optional[float]:
        """Seconds since the interface last produced a sample."""
        if kind not in self._last_sample_time:
            return None
        return self.sim.now - self._last_sample_time[kind]

    def predict_bytes_per_sec(self, kind: InterfaceKind) -> float:
        """Forecast throughput for an interface, bytes/s."""
        return mbps_to_bytes_per_sec(self.predict_mbps(kind))

    def sample_count(self, kind: InterfaceKind) -> int:
        """Samples absorbed for an interface so far."""
        return self.samples_by_kind.get(kind, 0)
