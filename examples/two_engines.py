#!/usr/bin/env python3
"""Same scenario, two transport engines.

The reproduction runs on a fluid, round-based TCP model; a segment-level
engine (SACK, fast retransmit, RTOs, a real receive buffer) lives in
`repro.packet` as its validation substrate.  This example runs one
download through both and prints the agreement — then shows the one
phenomenon only the packet engine can produce natively: MPTCP made
*slower* than a single path by head-of-line blocking.

Run:  python examples/two_engines.py
"""

from repro.net.interface import InterfaceKind
from repro.check.packet import (
    PathSpec,
    compare_single_path,
    fluid_mptcp_time,
    hol_goodput_collapse,
    packet_mptcp_time,
)
from repro.units import mib


def main():
    print("single-path downloads (4 MiB), fluid vs packet engine:")
    specs = [
        ("good WiFi, 12 Mbps / 40 ms", PathSpec(12.0, 0.04)),
        ("bad WiFi, 0.8 Mbps / 50 ms", PathSpec(0.8, 0.05)),
        ("LTE, 10 Mbps / 70 ms", PathSpec(10.0, 0.07, kind=InterfaceKind.LTE)),
    ]
    for c in compare_single_path(specs, size_bytes=mib(4)):
        print(f"  {c.label:28s} fluid {c.fluid_time:6.2f} s   "
              f"packet {c.packet_time:6.2f} s   ratio {c.ratio:.2f}")

    print()
    mptcp_specs = [
        PathSpec(8.0, 0.04),
        PathSpec(6.0, 0.07, kind=InterfaceKind.LTE),
    ]
    fluid = fluid_mptcp_time(mptcp_specs, mib(8))
    print("MPTCP (8 MiB over 8 + 6 Mbps):")
    print(f"  fluid engine:                    {fluid:6.2f} s")
    for buf in (128_000.0, 256_000.0, 2_000_000.0):
        t, _split = packet_mptcp_time(mptcp_specs, mib(8), rcv_buffer=buf)
        print(f"  packet engine, {buf / 1000:5.0f} KB buffer:  {t:6.2f} s")
    print("  -> the fluid model's scheduler-utilization formula matches the")
    print("     constrained-buffer regime of a real receive window.")

    print()
    alone, together = hol_goodput_collapse()
    print("head-of-line pathology (64 KB receive buffer, slow+laggy 2nd path):")
    print(f"  fast path alone: {alone:5.2f} s    MPTCP with both: {together:5.2f} s")
    print("  adding a path made things worse — the mechanism behind the")
    print("  paper's Bad-WiFi/Bad-LTE observations, and the reason adaptive")
    print("  path suspension (eMPTCP) has something to win.")


if __name__ == "__main__":
    main()
