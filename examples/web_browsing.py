#!/usr/bin/env python3
"""The §5.4 case study: loading a CNN-sized home page.

107 objects fetched over six parallel persistent connections, the way
the 2014 Android browser did it.  Every object is smaller than eMPTCP's
κ threshold and no connection stays busy past τ, so eMPTCP never powers
the LTE radio — while standard MPTCP opens (and tail-drains) six LTE
subflows for nearly no throughput benefit.

Run:  python examples/web_browsing.py
"""

from repro.experiments.web import PROTOCOLS, run_web
from repro.workloads.web import cnn_like_page


def main():
    page = cnn_like_page()
    print(f"page: {len(page)} objects, {page.total_bytes / 1e6:.2f} MB total, "
          f"largest object {max(page.object_sizes) / 1024:.0f} KB")
    print()
    print(f"{'strategy':10s} {'latency':>9} {'energy':>9} {'LTE traffic':>12}")
    results = {}
    for protocol in PROTOCOLS:
        result = run_web(protocol, page=page, seed=42)
        results[protocol] = result
        print(
            f"{protocol:10s} {result.latency:8.2f}s {result.energy_j:8.2f}J "
            f"{result.lte_bytes / 1e3:10.1f}KB"
        )
    print()
    mptcp, emptcp = results["mptcp"], results["emptcp"]
    extra = mptcp.energy_j - emptcp.energy_j
    print(f"MPTCP spends {extra:.1f} J more ({extra / emptcp.energy_j:.0%}) for a "
          f"{mptcp.latency - emptcp.latency:+.2f} s latency difference —")
    print("the cellular promotion and tail of six subflows, bought for "
          f"{mptcp.lte_bytes / 1e3:.0f} KB of objects.")


if __name__ == "__main__":
    main()
