#!/usr/bin/env python3
"""Walking through a building while streaming (the §4.5 scenario).

A commuter walks the Figure-11 route for 250 seconds with a backlogged
download (think: podcast prefetch).  WiFi throughput follows the
distance to the AP; the association never breaks, it just becomes
useless twice along the way.  Compare how much data each strategy moves
and what it costs in joules — and watch eMPTCP bring LTE up exactly
during the out-of-range excursions.

Run:  python examples/commuter_walk.py
"""

from repro.experiments.mobility import (
    PROTOCOLS,
    example_traces,
    mobility_capacity_trace,
)
from repro.units import bytes_per_sec_to_mbps


def ascii_sparkline(values, width=60, peak=None):
    """Render a value series as a coarse ASCII sparkline."""
    blocks = " .:-=+*#%@"
    peak = peak or max(values) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(
        blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
        for v in sampled
    )


def main():
    trace = mobility_capacity_trace()
    wifi_rates = [bytes_per_sec_to_mbps(r) for _t, r in trace]
    print("WiFi rate along the walk (0-250 s, peak "
          f"{max(wifi_rates):.0f} Mbps):")
    print("  " + ascii_sparkline(wifi_rates))
    print()

    print("running", ", ".join(PROTOCOLS), "over the same walk...")
    results = example_traces()
    print()
    print(f"{'strategy':10s} {'downloaded':>12} {'energy':>9} {'uJ/bit':>8} "
          f"{'LTE share':>10}")
    for protocol, result in results.items():
        lte_share = result.diagnostics.get("lte_bytes", 0.0) / max(
            1.0, result.bytes_received
        )
        print(
            f"{protocol:10s} {result.bytes_received / 1e6:9.1f} MB "
            f"{result.energy_j:8.1f} J {result.joules_per_bit * 1e6:8.3f} "
            f"{lte_share:9.0%}"
        )
    print()
    emptcp = results["emptcp"]
    print("eMPTCP LTE usage over time (Mbps, sampled each second):")
    lte_rates = [bytes_per_sec_to_mbps(v) for v in emptcp.cell_rate_series.values]
    print("  " + ascii_sparkline(lte_rates, peak=max(lte_rates) or 1))
    print("   ^ LTE activates only while WiFi is out of range — compare "
          "with the WiFi sparkline above.")


if __name__ == "__main__":
    main()
