#!/usr/bin/env python3
"""Streaming a video on a train (a §7 future-work scenario).

A 2.5 Mbps video plays for two minutes while the WiFi swings between
comfortable and below-bitrate.  The streaming client is buffer-driven
(DASH-style): bursts of chunk fetches separated by idle gaps — a very
different traffic pattern from the paper's backlogged downloads.

What to look for:

* TCP over WiFi is the cheapest but the video stalls whenever WiFi
  drops below the bitrate;
* MPTCP never stalls but keeps the LTE radio's tail warm for every
  burst, even when WiFi alone would have been enough;
* eMPTCP streams as smoothly as MPTCP while bringing LTE up only when
  WiFi cannot sustain the bitrate.

Run:  python examples/video_streaming.py
"""

from repro.experiments.streaming import PROTOCOLS, run_streaming


def main():
    print("streaming 120 s of 2.5 Mbps video over on/off WiFi "
          "(10 <-> 1.2 Mbps)...\n")
    print(f"{'strategy':10s} {'startup':>8} {'stalls':>7} {'stall time':>11} "
          f"{'energy':>9}")
    results = {}
    for protocol in PROTOCOLS:
        result = run_streaming(protocol, media_seconds=120.0, seed=3)
        results[protocol] = result
        print(
            f"{protocol:10s} {result.startup_delay:7.2f}s "
            f"{result.rebuffer_events:7d} {result.rebuffer_time:10.1f}s "
            f"{result.energy_j:8.1f}J"
        )
    print()
    emptcp, mptcp, tcp = results["emptcp"], results["mptcp"], results["tcp-wifi"]
    saved = mptcp.energy_j - emptcp.energy_j
    print(f"eMPTCP matches MPTCP's playback quality while saving {saved:.0f} J "
          f"({saved / mptcp.energy_j:.0%});")
    if tcp.rebuffer_time > 0:
        print(f"WiFi-only saves more joules but freezes the video for "
              f"{tcp.rebuffer_time:.0f} s — the trade-off eMPTCP navigates.")


if __name__ == "__main__":
    main()
