#!/usr/bin/env python3
"""Downloading a large file on flaky café WiFi (the §4.3 scenario).

The AP's bandwidth flips between great (12 Mbps) and terrible
(0.8 Mbps) with ~40 s dwell times while you pull a 128 MiB update.
Watch the three strategies make their trade-offs in real numbers, and
inspect eMPTCP's MP_PRIO trail to see exactly when it suspended and
resumed the LTE subflow.

Run:  python examples/flaky_cafe_wifi.py
"""

from repro.experiments.random_bw import example_trace
from repro.units import mib


def main():
    print("downloading 128 MiB over on/off WiFi (12 <-> 0.8 Mbps, "
          "mean dwell 40 s), LTE 10 Mbps available...\n")
    traces = example_trace(download_bytes=mib(128), seed=11)

    print(f"{'strategy':10s} {'finish':>9} {'energy':>9} {'mean rate':>10}")
    for protocol, result in traces.items():
        print(
            f"{protocol:10s} {result.download_time:8.1f}s "
            f"{result.energy_j:8.1f}J {result.mean_goodput_mbps:8.1f} Mbps"
        )

    emptcp = traces["emptcp"]
    print()
    print("accumulated energy at 30 s checkpoints (J):")
    horizon = int(max(r.download_time for r in traces.values()))
    header = "  t(s)   " + "  ".join(f"{p:>9s}" for p in traces)
    print(header)
    for t in range(0, horizon + 1, 30):
        row = []
        for result in traces.values():
            series = result.energy_series
            row.append(f"{series.value_at(min(t, series.times[-1])):9.1f}")
        print(f"  {t:5d}  " + "  ".join(row))
    print()
    print(f"eMPTCP path-usage switches: "
          f"{emptcp.diagnostics['decision_switches']:.0f}, "
          f"LTE suspensions: {emptcp.diagnostics.get('lte_suspends', 0):.0f}")
    print("eMPTCP finishes far sooner than WiFi-only and burns less than "
          "always-on MPTCP — the middle of the paper's Figure 8.")


if __name__ == "__main__":
    main()
