#!/usr/bin/env python3
"""Quickstart: an energy-aware multipath download in ~50 lines.

Builds a WiFi path and an LTE path, wires up the Galaxy S3 energy
model, downloads 16 MiB with eMPTCP, and reports what happened —
including whether the LTE subflow was ever established.

Run:  python examples/quickstart.py
"""

from repro import (
    EMPTCPConnection,
    FiniteSource,
    GALAXY_S3,
    InterfaceKind,
    NetworkInterface,
    NetworkPath,
    ConstantCapacity,
    Simulator,
)
from repro.energy.meter import EnergyMeter
from repro.energy.rrc import RrcMachine
from repro.units import bytes_per_sec_to_mbps, mbps_to_bytes_per_sec, mib


def build_path(sim, kind, mbps, rtt):
    path = NetworkPath(
        NetworkInterface(kind),
        ConstantCapacity(mbps_to_bytes_per_sec(mbps)),
        base_rtt=rtt,
    )
    path.attach(sim)
    return path


def main():
    sim = Simulator()

    # The two paths of a dual-homed phone.  Try wifi mbps=0.8 to watch
    # eMPTCP bring LTE up after the tau timer instead.
    wifi = build_path(sim, InterfaceKind.WIFI, mbps=12.0, rtt=0.040)
    lte = build_path(sim, InterfaceKind.LTE, mbps=10.0, rtt=0.065)

    # Energy side: meter + LTE RRC machine (promotion/tail).
    meter = EnergyMeter(sim, GALAXY_S3)
    rrc = RrcMachine(sim, GALAXY_S3.rrc[InterfaceKind.LTE])
    lte.rrc = rrc
    rrc.on_state_change(lambda _t, s: meter.set_rrc_state(InterfaceKind.LTE, s))
    wifi.on_aggregate_rate(lambda _t, r: meter.set_rate(InterfaceKind.WIFI, r))
    lte.on_aggregate_rate(lambda _t, r: meter.set_rate(InterfaceKind.LTE, r))
    meter.add_one_shot(GALAXY_S3.wifi_activation_j)

    # The download, over an energy-aware MPTCP connection.
    source = FiniteSource(mib(16))
    conn = EMPTCPConnection(sim, wifi, lte, source, profile=GALAXY_S3)
    conn.on_complete(lambda _c: sim.stop())
    conn.open()
    sim.run(until=600.0)

    assert conn.completed_at is not None, "download did not finish"
    goodput = bytes_per_sec_to_mbps(conn.bytes_received / conn.completed_at)
    print(f"downloaded   {conn.bytes_received / 1e6:.1f} MB "
          f"in {conn.completed_at:.2f} s ({goodput:.1f} Mbps)")
    print(f"energy       {meter.checkpoint():.2f} J "
          f"({meter.checkpoint() / conn.bytes_received * 1e6:.2f} uJ/byte)")
    lte_sf = conn.mptcp.subflow_for(InterfaceKind.LTE)
    if lte_sf is None:
        print("LTE subflow  never established — WiFi alone was the most "
              "energy-efficient choice")
    else:
        print(f"LTE subflow  established at t={conn.delayed.established_at:.2f}s "
              f"(trigger: {conn.delayed.trigger}), carried "
              f"{lte_sf.bytes_delivered / 1e6:.1f} MB")
    print(f"decisions    final={conn.decision.value}, "
          f"controller switches={conn.controller.switches}")
    print("option log  ", *[f"\n  {opt}" for opt in conn.option_log])


if __name__ == "__main__":
    main()
